package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// This file packages the paper's TPE surrogate as engine
// implementations: the "ranking" engine (score every remaining pool
// candidate, argmax — §III-D for finite spaces) and the "proposal"
// engine (sample candidates from pg, keep the best — for continuous
// or unenumerable spaces). Both share TPEModel; they differ only in
// the Acquirer.

func init() {
	RegisterEngine(EngineSpec{
		Name: "ranking",
		Pool: PoolRequired,
		New: func(sp *space.Space, opts Options, pool *Pool) (Model, Acquirer, error) {
			return &TPEModel{cfg: opts.Surrogate}, rankingAcquirer{}, nil
		},
	})
	RegisterEngine(EngineSpec{
		Name: "proposal",
		Pool: PoolUnused,
		New: func(sp *space.Space, opts Options, pool *Pool) (Model, Acquirer, error) {
			return &TPEModel{cfg: opts.Surrogate}, proposalAcquirer{}, nil
		},
	})
}

// TPEModel adapts the factorized pg/pb Surrogate (paper eq. 7-8) to
// the Model interface. Fit rebuilds the surrogate from scratch — the
// densities are cheap relative to one objective evaluation.
type TPEModel struct {
	cfg SurrogateConfig
	s   *Surrogate
}

// Fit rebuilds the surrogate from the history.
func (m *TPEModel) Fit(h *History) error {
	s, err := BuildSurrogate(h, m.cfg)
	if err != nil {
		return err
	}
	m.s = s
	return nil
}

// Observe is a no-op: Fit refits from the full history.
func (m *TPEModel) Observe(Observation) {}

// Score returns log pg(c) - log pb(c).
func (m *TPEModel) Score(c space.Config) float64 { return m.s.Score(c) }

// ScoreBatch scores a columnar batch, bit-identical to row-wise Score.
func (m *TPEModel) ScoreBatch(b *space.Batch, dst []float64) { m.s.ScoreBatch(b, dst) }

// Sample draws from the good density pg.
func (m *TPEModel) Sample(r *stats.RNG) space.Config { return m.s.SampleGood(r) }

// Importance returns the per-parameter JS divergence between pg and
// pb (nil before the first Fit).
func (m *TPEModel) Importance() []float64 {
	if m.s == nil {
		return nil
	}
	return m.s.Importance()
}

// Marginals exposes the fitted densities for rendering (nil before
// the first Fit); see Marginaler.
func (m *TPEModel) Marginals() []MarginalReport {
	if m.s == nil {
		return nil
	}
	return m.s.Marginals()
}

// Surrogate returns the most recently fitted surrogate (nil before
// the first Fit), for analyses that need the concrete densities.
func (m *TPEModel) Surrogate() *Surrogate { return m.s }

// rankingAcquirer scores every remaining pool candidate and picks the
// argmax (k = 1) or the top-k diversified by Hamming distance.
type rankingAcquirer struct{}

func (rankingAcquirer) Propose(a *Acquisition, k int) ([]space.Config, error) {
	p := a.Pool
	if p == nil {
		return nil, fmt.Errorf("core: ranking acquisition requires a candidate pool")
	}
	rem := p.Remaining()
	if len(rem) == 0 {
		return nil, nil
	}
	batch, err := p.Batch()
	if err != nil {
		return nil, err
	}
	scores := ScoreAll(a.Model, batch, a.Parallelism)

	if k == 1 {
		// Argmax over the remaining pool, ties broken by pool order —
		// exactly the paper's per-iteration selection.
		best := 0
		for i := 1; i < len(rem); i++ {
			if scores[rem[i]] > scores[rem[best]] {
				best = i
			}
		}
		return []space.Config{p.Candidate(rem[best])}, nil
	}

	// Batch mode: rank the pool, then greedily admit candidates at
	// pairwise Hamming distance >= minDist, relaxing the requirement
	// whenever a pass admits nothing (pure top-k degenerates to the
	// argmax and its immediate neighbors).
	type scored struct {
		idx   int
		score float64
	}
	pool := make([]scored, len(rem))
	for i, idx := range rem {
		pool[i] = scored{idx: idx, score: scores[idx]}
	}
	sort.Slice(pool, func(a, b int) bool {
		if pool[a].score != pool[b].score {
			return pool[a].score > pool[b].score
		}
		return pool[a].idx < pool[b].idx
	})

	var picks []space.Config
	minDist := 2
	for len(picks) < k && minDist >= 0 {
		admitted := 0
		for _, cand := range pool {
			if len(picks) >= k {
				break
			}
			c := p.Candidate(cand.idx)
			if containsConfig(picks, c) {
				continue
			}
			if minHamming(picks, c) >= minDist {
				picks = append(picks, c)
				admitted++
			}
		}
		if admitted == 0 || len(picks) < k {
			minDist-- // relax diversity until the batch fills
		}
	}
	return picks, nil
}

// proposalAcquirer draws candidates from the model's good density and
// keeps the best-scoring unevaluated ones.
type proposalAcquirer struct{}

func (proposalAcquirer) Propose(a *Acquisition, k int) ([]space.Config, error) {
	if k == 1 {
		return proposeOne(a)
	}
	return proposeBatch(a, k)
}

// proposeOne draws ProposalCandidates configurations from pg and
// returns the best-scoring previously unevaluated one, falling back
// to uniform exploration when every draw was a duplicate.
func proposeOne(a *Acquisition) ([]space.Config, error) {
	var best space.Config
	bestScore := math.Inf(-1)
	for i := 0; i < a.ProposalCandidates; i++ {
		c := a.Model.Sample(a.RNG)
		if a.History.Contains(c) {
			continue
		}
		if sc := a.Model.Score(c); sc > bestScore {
			bestScore = sc
			best = c
		}
	}
	if best == nil {
		// Every proposal was a duplicate (tiny discrete space); fall
		// back to uniform exploration.
		for try := 0; try < 100000; try++ {
			c := a.Space.Sample(a.RNG)
			if !a.History.Contains(c) {
				return []space.Config{c}, nil
			}
		}
		return nil, fmt.Errorf("core: proposal strategy exhausted the space")
	}
	return []space.Config{best}, nil
}

// proposeBatch draws ProposalCandidates*k configurations from pg and
// keeps the k best distinct unevaluated ones.
func proposeBatch(a *Acquisition, k int) ([]space.Config, error) {
	type scored struct {
		c     space.Config
		score float64
	}
	var cands []scored
	seen := make(map[string]bool)
	draws := a.ProposalCandidates * k
	for i := 0; i < draws; i++ {
		c := a.Model.Sample(a.RNG)
		key := a.Space.Key(c)
		if a.History.Contains(c) || seen[key] {
			continue
		}
		seen[key] = true
		cands = append(cands, scored{c: c, score: a.Model.Score(c)})
	}
	sort.Slice(cands, func(x, y int) bool { return cands[x].score > cands[y].score })
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]space.Config, len(cands))
	for i, sc := range cands {
		out[i] = sc.c
	}
	return out, nil
}

func containsConfig(set []space.Config, c space.Config) bool {
	for _, s := range set {
		if s.Equal(c) {
			return true
		}
	}
	return false
}

// minHamming returns the smallest Hamming distance from c to any
// configuration in set (or a large value for an empty set).
func minHamming(set []space.Config, c space.Config) int {
	if len(set) == 0 {
		return 1 << 30
	}
	min := 1 << 30
	for _, s := range set {
		d := 0
		for i := range c {
			if s[i] != c[i] {
				d++
			}
		}
		if d < min {
			min = d
		}
	}
	return min
}
