package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// This file packages the paper's TPE surrogate as engine
// implementations: the "ranking" engine (score every remaining pool
// candidate, argmax — §III-D for finite spaces) and the "proposal"
// engine (sample candidates from pg, keep the best — for continuous
// or unenumerable spaces). Both share TPEModel; they differ only in
// the Acquirer.

func init() {
	RegisterEngine(EngineSpec{
		Name: "ranking",
		Pool: PoolRequired,
		New: func(sp *space.Space, opts Options, pool *Pool) (Model, Acquirer, error) {
			return &TPEModel{cfg: opts.Surrogate}, rankingAcquirer{}, nil
		},
	})
	RegisterEngine(EngineSpec{
		Name: "proposal",
		Pool: PoolUnused,
		New: func(sp *space.Space, opts Options, pool *Pool) (Model, Acquirer, error) {
			return &TPEModel{cfg: opts.Surrogate}, proposalAcquirer{}, nil
		},
	})
}

// TPEModel adapts the factorized pg/pb Surrogate (paper eq. 7-8) to
// the Model interface. Fit is incremental: a generation-stamped
// surrogateBuilder keeps the sufficient statistics (sorted values,
// category counts, partition membership) across calls, so a fit after
// k new observations costs O(k·dims + flips) instead of O(n·dims),
// and a fit with no new observations is a cache hit that does no work
// at all. Results are bit-identical to a cold BuildSurrogate (the
// golden sequences and TestIncrementalFitMatchesCold pin this).
type TPEModel struct {
	cfg SurrogateConfig
	s   *Surrogate

	b       *surrogateBuilder
	fitHist *History // history the builder is tracking
	fitGen  uint64   // history generation of the current fit

	// active is the surrogate serving Score/ScoreBatch/Sample: the
	// exact surrogate s when no work is pending, or a fantasy surrogate
	// (observed + constant-liar pending, see History.Fantasized) cached
	// under the composed (generation, pending hash) key. The exact
	// incremental fit always runs first, so the no-pending path is
	// bit-identical to the pre-overlay behavior and introspection
	// (Importance, Marginals, Surrogate) keeps reporting real data.
	active   *Surrogate
	fant     *Surrogate
	fantGen  uint64
	fantPend uint64

	imp    []float64  // cached Importance (JS divergences)
	impFor *Surrogate // surrogate imp was computed from
}

// Fit brings the surrogate up to date with the history. When the
// history's generation and pending overlay are unchanged since the
// last successful Fit this is a no-op; otherwise only the new
// observations (and any membership flips caused by the moved
// α-quantile) are folded in, plus — when in-flight work exists — a
// cold fantasy fit over the observed+fantasized view.
func (m *TPEModel) Fit(h *History) error {
	gen := h.Generation()
	if m.s == nil || m.fitHist != h || m.fitGen != gen {
		if m.b == nil || m.fitHist != h || m.b.n > h.Len() {
			b, err := newSurrogateBuilder(h.Space(), m.cfg)
			if err != nil {
				return err
			}
			m.b = b
			m.fant = nil
			m.fitHist = h
		}
		s, err := m.b.Fold(h)
		if err != nil {
			return err
		}
		m.s = s
		m.fitGen = gen
	}
	if h.PendingLen() == 0 {
		m.active = m.s
		return nil
	}
	pend := h.PendingHash()
	if m.fant == nil || m.fantGen != gen || m.fantPend != pend {
		fb, err := newSurrogateBuilder(h.Space(), m.cfg)
		if err != nil {
			return err
		}
		s, err := fb.Fold(h.Fantasized())
		if err != nil {
			return err
		}
		m.fant = s
		m.fantGen = gen
		m.fantPend = pend
	}
	m.active = m.fant
	return nil
}

// Observe is a no-op: Fit refits from the full history.
func (m *TPEModel) Observe(Observation) {}

// current returns the surrogate serving acquisition: the fantasized
// one when the last Fit saw pending work, else the exact one (also the
// fallback for models constructed around a ready-made surrogate).
func (m *TPEModel) current() *Surrogate {
	if m.active != nil {
		return m.active
	}
	return m.s
}

// Score returns log pg(c) - log pb(c) under the active (fantasized
// when pending work exists) surrogate.
func (m *TPEModel) Score(c space.Config) float64 { return m.current().Score(c) }

// ScoreBatch scores a columnar batch, bit-identical to row-wise Score.
func (m *TPEModel) ScoreBatch(b *space.Batch, dst []float64) { m.current().ScoreBatch(b, dst) }

// Sample draws from the good density pg of the active surrogate.
func (m *TPEModel) Sample(r *stats.RNG) space.Config { return m.current().SampleGood(r) }

// Importance returns the per-parameter JS divergence between pg and
// pb (nil before the first Fit). The result is cached per fitted
// surrogate, so repeated calls between fits (e.g. a session Info
// endpoint polled between evaluations) cost nothing; callers must not
// mutate the returned slice.
func (m *TPEModel) Importance() []float64 {
	if m.s == nil {
		return nil
	}
	if m.imp == nil || m.impFor != m.s {
		m.imp = m.s.Importance()
		m.impFor = m.s
	}
	return m.imp
}

// Marginals exposes the fitted densities for rendering (nil before
// the first Fit); see Marginaler.
func (m *TPEModel) Marginals() []MarginalReport {
	if m.s == nil {
		return nil
	}
	return m.s.Marginals()
}

// Surrogate returns the most recently fitted surrogate (nil before
// the first Fit), for analyses that need the concrete densities.
func (m *TPEModel) Surrogate() *Surrogate { return m.s }

// RankingAcquirer returns the pool-scoring acquirer used by the
// "ranking" engine — argmax over all unevaluated candidates at k = 1,
// top-k diversified by Hamming distance otherwise — for engines
// registered outside this package (e.g. the GP-EI engine) whose
// selection rule is "score every remaining candidate, pick the best".
// It shares the tuner's generation-keyed score caches, so any model
// with a cheap ScoreBatch gets the allocation-free warm path.
func RankingAcquirer() Acquirer { return rankingAcquirer{} }

// ProposalAcquirer returns the pg-sampling acquirer used by the
// "proposal" engine — draw candidates from the model's Sample, keep
// the best-scoring unevaluated ones — for engines registered outside
// this package that need pool-free acquisition (e.g. the motpe engine
// on continuous or unenumerable spaces).
func ProposalAcquirer() Acquirer { return proposalAcquirer{} }

// rankingAcquirer scores every remaining pool candidate and picks the
// argmax (k = 1) or the top-k diversified by Hamming distance.
type rankingAcquirer struct{}

func (rankingAcquirer) Propose(a *Acquisition, k int) ([]space.Config, error) {
	p := a.Pool
	if p == nil {
		return nil, fmt.Errorf("core: ranking acquisition requires a candidate pool")
	}
	rem := p.Remaining()
	if len(rem) == 0 {
		return nil, nil
	}
	batch, err := p.Batch()
	if err != nil {
		return nil, err
	}
	scores := a.poolScores(batch)

	if k == 1 {
		// Argmax over the remaining pool net of skips, ties broken by
		// pool order — exactly the paper's per-iteration selection
		// (with a nil Skip the scan is the original argmax).
		best := -1
		for i := 0; i < len(rem); i++ {
			if a.skips(p.Candidate(rem[i])) {
				continue
			}
			if best < 0 || scores[rem[i]] > scores[rem[best]] {
				best = i
			}
		}
		if best < 0 {
			return nil, nil // everything remaining is skipped (leased)
		}
		picks := append(a.takePicks(1), p.Candidate(rem[best]))
		if a.Scratch != nil {
			a.Scratch.picks = picks
		}
		return picks, nil
	}

	// Batch mode: rank the pool, then greedily admit candidates at
	// pairwise Hamming distance >= minDist, relaxing the requirement
	// whenever a pass admits nothing (pure top-k degenerates to the
	// argmax and its immediate neighbors).
	pool := rankRemaining(a, rem, scores)

	picks := a.takePicks(k)
	minDist := 2
	for len(picks) < k && minDist >= 0 {
		admitted := 0
		for i := 0; len(picks) < k; i++ {
			cand, ok := pool.at(i)
			if !ok {
				break
			}
			c := p.Candidate(cand.idx)
			if a.skips(c) || containsConfig(picks, c) {
				continue
			}
			if minHamming(picks, c) >= minDist {
				picks = append(picks, c)
				admitted++
			}
		}
		if admitted == 0 || len(picks) < k {
			minDist-- // relax diversity until the batch fills
		}
	}
	if a.Scratch != nil {
		a.Scratch.picks = picks
	}
	return picks, nil
}

// rankRemaining returns the remaining pool ordered by (score desc,
// candidate index asc) as a lazily materialized view, cached by the
// composed (history generation, pending hash) key: the remaining set
// and the scores both only change when the fantasized history does,
// and the comparator is a strict total order (the index tiebreak), so
// both the cache and the on-demand extraction yield the unique
// ordering a full sort would produce. Skip filtering happens at
// admission time, so the cached ranking is skip-independent.
func rankRemaining(a *Acquisition, rem []int, scores []float64) *rankedPool {
	s := a.Scratch
	if s == nil {
		r := &rankedPool{}
		r.reset(rem, scores)
		return r
	}
	gen := a.History.Generation()
	pend := a.History.PendingHash()
	if !s.rankedOK || s.rankedGen != gen || s.rankedPend != pend || s.rank.size() != len(rem) {
		s.rank.reset(rem, scores)
		s.rankedGen = gen
		s.rankedPend = pend
		s.rankedOK = true
	}
	return &s.rank
}

// rankedPool is a lazily sorted view of the remaining pool: a sorted
// prefix grown on demand by popping a max-heap of the rest. The batch
// acquirer usually admits its k picks from a short prefix, so this
// costs O(n + e·log n) for e extracted entries instead of the
// O(n·log n) of sorting the whole pool on every generation change,
// while position i always holds exactly the candidate a full sort
// would put there.
type rankedPool struct {
	sorted []rankedCandidate // extracted prefix, in final order
	heap   []rankedCandidate // max-heap of the not-yet-extracted rest
}

// rankedBefore is the strict total order shared by the heap and the
// extracted prefix.
func rankedBefore(a, b rankedCandidate) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.idx < b.idx
}

func (r *rankedPool) size() int { return len(r.sorted) + len(r.heap) }

// reset reloads the view from the remaining pool and its scores,
// reusing both buffers.
func (r *rankedPool) reset(rem []int, scores []float64) {
	r.sorted = r.sorted[:0]
	if cap(r.heap) < len(rem) {
		r.heap = make([]rankedCandidate, len(rem))
	}
	r.heap = r.heap[:len(rem)]
	for i, idx := range rem {
		r.heap[i] = rankedCandidate{idx: idx, score: scores[idx]}
	}
	for i := len(r.heap)/2 - 1; i >= 0; i-- {
		r.siftDown(i)
	}
}

func (r *rankedPool) siftDown(i int) {
	h := r.heap
	for {
		child := 2*i + 1
		if child >= len(h) {
			return
		}
		if right := child + 1; right < len(h) && rankedBefore(h[right], h[child]) {
			child = right
		}
		if !rankedBefore(h[child], h[i]) {
			return
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

// at returns the i-th best remaining candidate, extending the sorted
// prefix as needed; ok is false past the end of the pool.
func (r *rankedPool) at(i int) (rankedCandidate, bool) {
	for i >= len(r.sorted) {
		if len(r.heap) == 0 {
			return rankedCandidate{}, false
		}
		top := r.heap[0]
		last := len(r.heap) - 1
		r.heap[0] = r.heap[last]
		r.heap = r.heap[:last]
		r.siftDown(0)
		r.sorted = append(r.sorted, top)
	}
	return r.sorted[i], true
}

// proposalAcquirer draws candidates from the model's good density and
// keeps the best-scoring unevaluated ones.
type proposalAcquirer struct{}

func (proposalAcquirer) Propose(a *Acquisition, k int) ([]space.Config, error) {
	if k == 1 {
		return proposeOne(a)
	}
	return proposeBatch(a, k)
}

// proposeOne draws ProposalCandidates configurations from pg and
// returns the best-scoring previously unevaluated one, falling back
// to uniform exploration when every draw was a duplicate.
func proposeOne(a *Acquisition) ([]space.Config, error) {
	var best space.Config
	bestScore := math.Inf(-1)
	for i := 0; i < a.ProposalCandidates; i++ {
		c := a.Model.Sample(a.RNG)
		if a.History.Contains(c) || a.skips(c) {
			continue
		}
		if sc := a.Model.Score(c); sc > bestScore {
			bestScore = sc
			best = c
		}
	}
	if best == nil {
		// Every proposal was a duplicate (tiny discrete space); fall
		// back to uniform exploration.
		for try := 0; try < 100000; try++ {
			c := a.Space.Sample(a.RNG)
			if !a.History.Contains(c) && !a.skips(c) {
				return []space.Config{c}, nil
			}
		}
		return nil, fmt.Errorf("core: proposal strategy exhausted the space")
	}
	return []space.Config{best}, nil
}

// proposeBatch draws ProposalCandidates*k configurations from pg and
// keeps the k best distinct unevaluated ones.
func proposeBatch(a *Acquisition, k int) ([]space.Config, error) {
	type scored struct {
		c     space.Config
		score float64
	}
	var cands []scored
	seen := make(map[string]bool)
	draws := a.ProposalCandidates * k
	for i := 0; i < draws; i++ {
		c := a.Model.Sample(a.RNG)
		key := a.Space.Key(c)
		if a.History.Contains(c) || seen[key] || a.skips(c) {
			continue
		}
		seen[key] = true
		cands = append(cands, scored{c: c, score: a.Model.Score(c)})
	}
	sort.Slice(cands, func(x, y int) bool { return cands[x].score > cands[y].score })
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]space.Config, len(cands))
	for i, sc := range cands {
		out[i] = sc.c
	}
	return out, nil
}

func containsConfig(set []space.Config, c space.Config) bool {
	for _, s := range set {
		if s.Equal(c) {
			return true
		}
	}
	return false
}

// minHamming returns the smallest Hamming distance from c to any
// configuration in set (or a large value for an empty set).
func minHamming(set []space.Config, c space.Config) int {
	if len(set) == 0 {
		return 1 << 30
	}
	min := 1 << 30
	for _, s := range set {
		d := 0
		for i := range c {
			if s[i] != c[i] {
				d++
			}
		}
		if d < min {
			min = d
		}
	}
	return min
}
