package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Large-space mode. Every pool-backed engine was fed by
// Space.Enumerate, which materializes the full constrained cross
// product — fine at the paper's table sizes (≤ ~32k grid points),
// impossible at the 10^6–10^9-point spaces the service targets. Two
// replacements, selected in NewTuner: pool-requiring engines get a
// SampledPool (a capped, uniform-over-valid sample of the grid), and
// the default TPE path switches to the "sampling" engine, which needs
// no pool at all — it draws candidates from the fitted good density
// pg and ranks them by pg/pb, the original TPE formulation (Watanabe
// 2023) rather than the exhaustive-scoring variant.

const (
	// DefaultEnumerateLimit is the grid size above which NewTuner stops
	// enumerating and switches to large-space mode. 2^20 configurations
	// is ~8 MB of values plus pool bookkeeping — still comfortable;
	// every table in the paper is far below it, so paper-scale runs are
	// byte-for-byte unaffected.
	DefaultEnumerateLimit = 1 << 20
	// DefaultPoolCap is the sampled-pool size when Options.PoolCap is 0.
	DefaultPoolCap = 4096
	// DefaultCandidateSamples is the per-acquisition good-density draw
	// count of the "sampling" engine when Options.CandidateSamples is 0.
	DefaultCandidateSamples = 1024
)

// gridTooLarge reports whether a fully discrete space's grid exceeds
// the enumerate limit (an overflowing grid trivially does).
func gridTooLarge(sp *space.Space) bool {
	grid, ok := sp.GridSize64()
	return !ok || grid > DefaultEnumerateLimit
}

// gridSizeString renders a grid size for error messages, including
// the overflowed case.
func gridSizeString(sp *space.Space) string {
	grid, ok := sp.GridSize64()
	if !ok {
		return "more than 2^62"
	}
	return fmt.Sprintf("%d", grid)
}

// SampledPool caps a pool-backed engine's candidate set on spaces too
// large to enumerate: K distinct configurations drawn uniformly over
// the valid grid by index-space rejection sampling (draw a uniform
// grid index, decode it, keep it if the constraint admits it). Memory
// is O(K) regardless of the grid size. Refresh redraws the set, so
// long sessions are not forever limited to the first K-candidate
// horizon.
type SampledPool struct {
	sp   *space.Space
	cap  int
	rng  *stats.RNG
	pool *Pool

	// exhausted counts draws that hit the retry bound before filling
	// the cap: the pool was returned short (≥ 2 candidates) because the
	// constraint or the exclusions rejected almost every index drawn.
	// Surfaced through Tuner.PoolExhaustedRetries so operators see a
	// too-restrictive constraint instead of a silently small pool.
	exhausted int64
}

// NewSampledPool draws the initial candidate set. cap 0 means
// DefaultPoolCap. The RNG is retained for Refresh; all draws come
// from it in a deterministic order, so a caller that reconstructs the
// tuner with the same seed (e.g. a journal replay) rebuilds the exact
// same pool.
func NewSampledPool(sp *space.Space, cap int, rng *stats.RNG) (*SampledPool, error) {
	if !sp.AllDiscrete() {
		return nil, fmt.Errorf("core: sampled pools need a fully discrete space")
	}
	if cap == 0 {
		cap = DefaultPoolCap
	}
	if cap < 2 {
		return nil, fmt.Errorf("core: sampled pool cap %d too small (need >= 2)", cap)
	}
	s := &SampledPool{sp: sp, cap: cap, rng: rng}
	if err := s.Refresh(nil); err != nil {
		return nil, err
	}
	return s, nil
}

// Refresh replaces the candidate pool with a fresh draw, skipping
// configurations the exclude predicate rejects (typically: already
// evaluated).
func (s *SampledPool) Refresh(exclude func(space.Config) bool) error {
	cands, err := s.draw(exclude)
	if err != nil {
		return err
	}
	pool, err := NewPool(s.sp, cands)
	if err != nil {
		return err
	}
	s.pool = pool
	return nil
}

// Pool returns the current candidate pool; Refresh swaps it for a new
// one rather than mutating it.
func (s *SampledPool) Pool() *Pool { return s.pool }

// draw collects up to cap distinct valid configurations by rejection
// sampling uniform grid indices. A short set (at least 2) is accepted
// when the constraint or the exclusions leave little else; an
// essentially-empty valid set is an error.
func (s *SampledPool) draw(exclude func(space.Config) bool) ([]space.Config, error) {
	grid, ok := s.sp.GridSize64()
	maxTries := 1000 * s.cap
	if maxTries < 1<<20 {
		maxTries = 1 << 20
	}
	out := make([]space.Config, 0, s.cap)
	seen := make(map[string]bool, s.cap)
	for tries := 0; tries < maxTries && len(out) < s.cap; tries++ {
		c := s.sp.FromGridIndex64(randGridIndex(s.rng, grid, ok))
		if !s.sp.Valid(c) {
			continue
		}
		key := s.sp.Key(c)
		if seen[key] || (exclude != nil && exclude(c)) {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("core: sampled pool found only %d valid configurations in %d draws (constraint too restrictive?)", len(out), maxTries)
	}
	if len(out) < s.cap {
		s.exhausted++
	}
	return out, nil
}

// ExhaustedRetries reports how many draws (initial and Refresh) hit
// the retry bound and returned a pool smaller than the cap.
func (s *SampledPool) ExhaustedRetries() int64 { return s.exhausted }

// randGridIndex draws a uniform index in [0, grid). gridOK=false
// means the true grid size exceeds 2^64, so every uint64 is inside
// it. The in-range case rejects the biased tail of the uint64 range
// instead of taking a bare modulus.
func randGridIndex(r *stats.RNG, grid uint64, gridOK bool) uint64 {
	if !gridOK {
		return r.Uint64()
	}
	limit := math.MaxUint64 - math.MaxUint64%grid // multiple of grid
	for {
		if v := r.Uint64(); v < limit {
			return v % grid
		}
	}
}

func init() {
	RegisterEngine(EngineSpec{
		Name: "sampling",
		Pool: PoolUnused,
		New: func(sp *space.Space, opts Options, pool *Pool) (Model, Acquirer, error) {
			return &TPEModel{cfg: opts.Surrogate}, samplingAcquirer{}, nil
		},
	})
}

// samplingAcquirer is pool-free TPE acquisition: draw
// CandidateSamples·k configurations from the fitted good density pg,
// deduplicate, drop evaluated ones, score the rest in one columnar
// ScoreBatch pass, and keep the top k by (score desc, draw order
// asc). Unlike the proposal acquirer it scores candidates in batch —
// the same hot path ranking uses — so acquisition cost is dominated
// by the draws, not per-row scoring.
type samplingAcquirer struct{}

func (samplingAcquirer) Propose(a *Acquisition, k int) ([]space.Config, error) {
	draws := a.CandidateSamples
	if draws <= 0 {
		draws = DefaultCandidateSamples
	}
	if k > 1 {
		draws *= k
	}
	cands := make([]space.Config, 0, draws)
	seen := make(map[string]bool, draws)
	for i := 0; i < draws; i++ {
		c := a.Model.Sample(a.RNG)
		key := a.Space.Key(c)
		if seen[key] || a.History.Contains(c) || a.skips(c) {
			continue
		}
		seen[key] = true
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		// Every draw was a duplicate or already evaluated — the good
		// density has collapsed onto known points. Explore uniformly.
		for try := 0; try < 100000; try++ {
			c := a.Space.Sample(a.RNG)
			if !a.History.Contains(c) && !a.skips(c) {
				return []space.Config{c}, nil
			}
		}
		return nil, fmt.Errorf("core: sampling acquisition exhausted the space")
	}
	batch, err := space.NewBatch(a.Space, cands)
	if err != nil {
		return nil, err
	}
	scores := ScoreAll(a.Model, batch, a.Parallelism)

	if k == 1 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if scores[i] > scores[best] {
				best = i
			}
		}
		return []space.Config{cands[best]}, nil
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if scores[order[x]] != scores[order[y]] {
			return scores[order[x]] > scores[order[y]]
		}
		return order[x] < order[y]
	})
	if len(order) > k {
		order = order[:k]
	}
	out := make([]space.Config, len(order))
	for i, idx := range order {
		out[i] = cands[idx]
	}
	return out, nil
}
