package core

import (
	"fmt"
	"math"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// JointSurrogate is the ablation counterpart of the factorized
// Surrogate: it estimates the *full joint* histograms pg(x) and pb(x)
// over the discrete configuration grid instead of the per-parameter
// product of eqs. 7-8.
//
// The paper rejects this design up front — "Estimating the full joint
// distributions pg(x) and pb(x) over the parameter space is not
// feasible as it would require significant amount of data" (§III-B) —
// and the ablation bench quantifies why: with the paper's budgets
// (tens to hundreds of samples over spaces of 10^3..10^4 cells) the
// joint histogram is almost everywhere smoothing mass, so its EI
// ranking degenerates to noise, while the factorized model already
// separates good from bad marginals. JointSurrogate exists to make
// that comparison runnable, not for production use.
type JointSurrogate struct {
	sp        *space.Space
	threshold float64
	smoothing float64
	// Sparse counts keyed by the grid index; the (astronomically
	// large) remaining mass is implicit smoothing.
	goodCounts, badCounts map[int]float64
	goodTotal, badTotal   float64
	gridSize              float64
}

// BuildJointSurrogate fits the joint-histogram model to a history over
// a fully discrete space.
func BuildJointSurrogate(h *History, cfg SurrogateConfig) (*JointSurrogate, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if h.Len() == 0 {
		return nil, fmt.Errorf("core: BuildJointSurrogate on empty history")
	}
	sp := h.Space()
	if !sp.AllDiscrete() {
		return nil, fmt.Errorf("core: joint surrogate requires a fully discrete space")
	}
	values := h.Values()
	threshold := stats.Quantile(values, cfg.Quantile)
	j := &JointSurrogate{
		sp:         sp,
		threshold:  threshold,
		smoothing:  cfg.Smoothing,
		goodCounts: make(map[int]float64),
		badCounts:  make(map[int]float64),
		gridSize:   float64(sp.GridSize()),
	}
	for _, o := range h.Observations() {
		idx := sp.GridIndex(o.Config)
		if o.Value <= threshold {
			j.goodCounts[idx]++
			j.goodTotal++
		} else {
			j.badCounts[idx]++
			j.badTotal++
		}
	}
	return j, nil
}

// Threshold returns the good/bad split value y_τ.
func (j *JointSurrogate) Threshold() float64 { return j.threshold }

// Score returns log pg(x) - log pb(x) under the joint histograms with
// Laplace smoothing spread over the whole grid.
func (j *JointSurrogate) Score(c space.Config) float64 {
	idx := j.sp.GridIndex(c)
	pg := (j.goodCounts[idx] + j.smoothing) / (j.goodTotal + j.smoothing*j.gridSize)
	pb := (j.badCounts[idx] + j.smoothing) / (j.badTotal + j.smoothing*j.gridSize)
	return math.Log(pg) - math.Log(pb)
}

// CoverageFraction reports how much of the grid carries any observed
// mass — the data-sparsity number behind the paper's infeasibility
// argument (≈ |H| / gridSize for deduplicated histories).
func (j *JointSurrogate) CoverageFraction() float64 {
	seen := make(map[int]struct{}, len(j.goodCounts)+len(j.badCounts))
	for idx := range j.goodCounts {
		seen[idx] = struct{}{}
	}
	for idx := range j.badCounts {
		seen[idx] = struct{}{}
	}
	return float64(len(seen)) / j.gridSize
}
