// Package core implements HiPerBOt, the paper's contribution: an
// active-learning configuration-selection framework built on
// Tree-structured-Parzen-Estimator-style Bayesian optimization
// (paper §II-III, following Bergstra et al. 2011).
//
// The pieces map one-to-one onto the paper:
//
//   - History is the observation history H_t (§III-A);
//   - Surrogate holds the factorized good/bad densities pg(x), pb(x)
//     split at the α-quantile threshold y_τ (§II, §III-B) and scores
//     candidates by the expected-improvement ratio pg(x)/pb(x) (eq. 5);
//   - Prior carries source-domain densities for transfer learning and
//     mixes them in with weight w (eqs. 9-10, §III-E);
//   - Tuner runs the iterative select→evaluate→update loop (§III-C)
//     with either the Ranking or the Proposal selection strategy
//     (§III-D);
//   - Importance ranks parameters by the Jensen-Shannon divergence
//     between their good and bad densities (§VI).
package core

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// Observation pairs an evaluated configuration with its objective
// value (lower is better). Multi-metric evaluations may additionally
// carry the raw metric map they were derived from and a canonical
// (all-minimize) objective vector for multi-objective engines; both
// are nil for classic single-value observations.
type Observation struct {
	Config space.Config
	// Value is the scalar objective driving Best, stall detection, and
	// every scalar engine. For multi-objective sessions it is the
	// scalarization of Objectives.
	Value float64
	// Metrics, when non-nil, holds the raw named measurements the
	// result was reported with (e.g. "p95_latency_ms"). Journaled and
	// replayed verbatim; never consulted by scalar engines.
	Metrics map[string]float64
	// Objectives, when non-nil, is the canonical minimize-oriented
	// objective vector (one entry per session objective, maximize
	// components sign-flipped) consumed by multi-objective engines.
	Objectives []float64
}

// History is the observation history H_t: every configuration whose
// true objective has been computed, in evaluation order.
type History struct {
	sp   *space.Space
	obs  []Observation
	seen map[string]bool
	best int    // index of the best observation, -1 when empty
	gen  uint64 // bumped on every Add; see Generation

	// Pending-observation overlay (see pending.go): in-flight
	// configurations fantasized into fits under the constant-liar
	// policy, keyed separately from the observed set.
	pend     []pendingEntry
	pendIdx  map[string]int // key → index into pend
	pendHash uint64         // order-independent digest; 0 when empty
	liar     LiarPolicy

	fant     *History // cached fantasized view (Fantasized)
	fantGen  uint64
	fantHash uint64
}

// NewHistory creates an empty history over the given space.
func NewHistory(sp *space.Space) *History {
	return &History{sp: sp, seen: make(map[string]bool), best: -1}
}

// Add appends an observation. Duplicate configurations are rejected
// with an error: the paper's Ranking strategy guarantees no duplicate
// evaluations, so a duplicate signals a selection bug (or a caller
// re-evaluating a noisy objective, which this framework models as
// deterministic tables).
func (h *History) Add(c space.Config, v float64) error {
	return h.AddObs(Observation{Config: c, Value: v})
}

// AddObs is Add for a full observation (metrics and objective vector
// included). The config is cloned; best tracking remains scalar — the
// minimum Value — so single-objective behavior is unchanged and
// multi-objective sessions track the best scalarized value (the Pareto
// front is derived from the stored vectors, not from best).
func (h *History) AddObs(obs Observation) error {
	key := h.sp.Key(obs.Config)
	if h.seen[key] {
		return fmt.Errorf("core: duplicate observation for %s", h.sp.Describe(obs.Config))
	}
	h.seen[key] = true
	obs.Config = obs.Config.Clone()
	h.obs = append(h.obs, obs)
	if h.best < 0 || obs.Value < h.obs[h.best].Value {
		h.best = len(h.obs) - 1
	}
	h.gen++
	return nil
}

// Grow preallocates room for n further observations: the obs slice
// capacity and, more importantly, the seen map — growing a string map
// one insert at a time across 10k resumed observations spends more
// time rehashing than observing. A no-op for n <= 0.
func (h *History) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(h.obs) - len(h.obs); free < n {
		grown := make([]Observation, len(h.obs), len(h.obs)+n)
		copy(grown, h.obs)
		h.obs = grown
	}
	seen := make(map[string]bool, len(h.seen)+n)
	for k, v := range h.seen {
		seen[k] = v
	}
	h.seen = seen
}

// Generation returns a counter that changes whenever the history
// does. A history is append-only, so equal generations on the same
// History mean the observation set is unchanged — the invalidation
// key for fitted-model and score caches (TPEModel, Scratch).
func (h *History) Generation() uint64 { return h.gen }

// MustAdd is Add but panics on duplicates.
func (h *History) MustAdd(c space.Config, v float64) {
	if err := h.Add(c, v); err != nil {
		panic(err)
	}
}

// Len returns the number of observations.
func (h *History) Len() int { return len(h.obs) }

// At returns the i-th observation in evaluation order.
func (h *History) At(i int) Observation { return h.obs[i] }

// Observations returns the full history slice (shared; do not mutate).
func (h *History) Observations() []Observation { return h.obs }

// Contains reports whether the configuration has been evaluated.
func (h *History) Contains(c space.Config) bool {
	return h.seen[h.sp.Key(c)]
}

// Best returns the best observation so far. It panics on an empty
// history.
func (h *History) Best() Observation {
	if h.best < 0 {
		panic("core: Best on empty history")
	}
	return h.obs[h.best]
}

// Values returns the objective values in evaluation order.
func (h *History) Values() []float64 {
	out := make([]float64, len(h.obs))
	for i, o := range h.obs {
		out[i] = o.Value
	}
	return out
}

// BestTrajectory returns, for each prefix length i+1, the best value
// observed within the first i+1 evaluations — the "best configuration
// vs sample size" curves of Figs. 2a-6a.
func (h *History) BestTrajectory() []float64 {
	out := make([]float64, len(h.obs))
	for i, o := range h.obs {
		if i == 0 || o.Value < out[i-1] {
			out[i] = o.Value
		} else {
			out[i] = out[i-1]
		}
	}
	return out
}

// Space returns the configuration space of the history.
func (h *History) Space() *space.Space { return h.sp }
