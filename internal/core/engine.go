package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/par"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// This file defines the tuner's engine seam. The paper's framework is
// modular — a surrogate model behind an acquisition rule — and the
// repo compares several such pairs (TPE, GEIST's label propagation,
// random search). Rather than each backend owning its own selection
// loop, a backend is a Model (beliefs about configurations) plus an
// Acquirer (how to turn beliefs into the next candidates), registered
// under a name; one Tuner loop drives any of them, and servers select
// them per session by name.

// Model is a tuning backend's belief state: fitted from the history,
// able to score candidates (higher = more promising) and to sample
// promising configurations.
type Model interface {
	// Fit rebuilds the model from the full history. It is called
	// before every acquisition, so incremental models may no-op when
	// nothing changed.
	Fit(h *History) error
	// Observe folds in a single new observation between fits; models
	// that refit from scratch in Fit may ignore it.
	Observe(obs Observation)
	// Score returns the acquisition score of one configuration
	// (higher is better). Only meaningful after a successful Fit.
	Score(c space.Config) float64
	// ScoreBatch scores every row of the columnar batch into dst
	// (len(dst) == b.Len()), the hot path for ranking acquisition.
	// Implementations must produce the same values as row-wise Score.
	ScoreBatch(b *space.Batch, dst []float64)
	// Sample draws a promising configuration, used by proposal-style
	// acquisition on unbounded or continuous spaces.
	Sample(r *stats.RNG) space.Config
	// Importance reports a per-parameter relevance score, or nil when
	// the model does not define one.
	Importance() []float64
}

// Acquisition carries everything an Acquirer may consult when
// proposing candidates. Pool is nil for engines that run without a
// finite candidate set. Scratch, when non-nil, provides reusable
// buffers and generation-keyed caches owned by the driving Tuner;
// acquirers must work (allocating as needed) when it is nil.
type Acquisition struct {
	Space              *space.Space
	Model              Model
	History            *History
	Pool               *Pool
	RNG                *stats.RNG
	Parallelism        int
	ProposalCandidates int
	CandidateSamples   int
	Scratch            *Scratch
	// Skip, when non-nil, excludes configurations from acquisition on
	// top of the evaluated set — the lease filter of pending-aware
	// ask/tell. Every acquirer must honor it; a nil Skip must leave
	// acquisition bit-identical to the pre-Skip behavior.
	Skip func(space.Config) bool
}

// skips reports whether c is excluded by the acquisition's Skip
// predicate (never excludes when Skip is nil).
func (a *Acquisition) skips(c space.Config) bool {
	return a.Skip != nil && a.Skip(c)
}

// rankedCandidate pairs a pool candidate index with its model score,
// the unit of the ranking acquirer's sorted view of the pool.
type rankedCandidate struct {
	idx   int
	score float64
}

// Scratch holds one tuner's reusable acquisition state: the score
// buffer and the sorted pool ranking, both keyed by the composed
// (history generation, pending hash) pair (the fitted model, and
// therefore every candidate score, is a pure function of the
// fantasized history), plus the picks buffer returned by Propose.
// With no pending overlay the hash component is always 0, so the key
// reduces to the plain generation and the warm steady-state k=1
// ranking acquisition stays allocation-free (guarded by
// TestSelectBatchNoAllocs).
type Scratch struct {
	scores     []float64 // model scores over the pool's full batch
	scoresGen  uint64
	scoresPend uint64
	scoresOK   bool

	rank       rankedPool // lazily sorted pool view (score desc, idx asc)
	rankedGen  uint64
	rankedPend uint64
	rankedOK   bool

	picks []space.Config // reused Propose result buffer
}

// invalidate drops every cached value (used when the tuner's model is
// refit against a different history object).
func (s *Scratch) invalidate() {
	s.scoresOK = false
	s.rankedOK = false
}

// poolScores returns the model's scores over the pool's full batch,
// served from the scratch cache when the (generation, pending hash)
// pair is unchanged since they were computed. The cached values are
// the exact float64s ScoreAll would produce (chunk boundaries are
// deterministic), so cache hits are bit-identical to recomputation.
func (a *Acquisition) poolScores(b *space.Batch) []float64 {
	s := a.Scratch
	if s == nil {
		return ScoreAll(a.Model, b, a.Parallelism)
	}
	gen := a.History.Generation()
	pend := a.History.PendingHash()
	if s.scoresOK && s.scoresGen == gen && s.scoresPend == pend && len(s.scores) == b.Len() {
		return s.scores
	}
	if cap(s.scores) < b.Len() {
		s.scores = make([]float64, b.Len())
	}
	s.scores = s.scores[:b.Len()]
	ScoreAllInto(a.Model, b, a.Parallelism, s.scores)
	s.scoresGen = gen
	s.scoresPend = pend
	s.scoresOK = true
	return s.scores
}

// takePicks returns an empty picks buffer to accumulate a Propose
// result into, reusing the scratch buffer when available. The
// returned slice is only valid until the next acquisition on the same
// tuner (see Tuner.SelectBatch).
func (a *Acquisition) takePicks(k int) []space.Config {
	if a.Scratch == nil {
		return make([]space.Config, 0, k)
	}
	if cap(a.Scratch.picks) < k {
		a.Scratch.picks = make([]space.Config, 0, k)
	}
	a.Scratch.picks = a.Scratch.picks[:0]
	return a.Scratch.picks
}

// Acquirer proposes up to k not-yet-evaluated candidates from a
// fitted model. A short (or empty) result means the reachable pool is
// exhausted; an error means acquisition itself failed.
type Acquirer interface {
	Propose(a *Acquisition, k int) ([]space.Config, error)
}

// Marginaler is implemented by models that expose per-parameter
// belief marginals for rendering (see RenderMarginals).
type Marginaler interface {
	Marginals() []MarginalReport
}

// serialScoreCutoff is the pool size below which ScoreAll skips the
// worker pool: the columnar TPE sweep costs a few ns per row, so
// fanning out goroutines for small pools costs more than it saves
// (measured in BenchmarkScoreBatch). Per-row results are bit-identical
// either way.
const serialScoreCutoff = 2048

// ScoreAll scores every row of b with m on up to workers goroutines,
// chunking the batch into column windows. Chunk boundaries are
// deterministic, so the result is independent of scheduling.
func ScoreAll(m Model, b *space.Batch, workers int) []float64 {
	dst := make([]float64, b.Len())
	ScoreAllInto(m, b, workers, dst)
	return dst
}

// ScoreAllInto is ScoreAll writing into a caller-provided buffer
// (len(dst) must equal b.Len()), the allocation-free variant used by
// the scratch-backed hot path.
func ScoreAllInto(m Model, b *space.Batch, workers int, dst []float64) {
	if b.Len() <= serialScoreCutoff {
		m.ScoreBatch(b, dst)
		return
	}
	par.Chunks(b.Len(), workers, func(_, lo, hi int) {
		m.ScoreBatch(b.Slice(lo, hi), dst[lo:hi])
	})
}

// PoolPolicy declares an engine's relationship to a finite candidate
// pool.
type PoolPolicy int

const (
	// PoolUnused engines sample the space directly; the tuner builds
	// no pool even when Options.Candidates is set.
	PoolUnused PoolPolicy = iota
	// PoolPreferred engines use a pool when one is available
	// (explicit candidates, or a fully discrete space small enough to
	// enumerate) and fall back to space sampling otherwise.
	PoolPreferred
	// PoolRequired engines cannot run without a finite candidate set.
	PoolRequired
)

// EngineSpec describes one registered engine: a name, its pool
// policy, and a factory building the model/acquirer pair.
type EngineSpec struct {
	Name string
	Pool PoolPolicy
	// PoolBound marks engines that capture pool state at construction
	// (e.g. geist's Hamming graph, gp's feature encoding): their pool
	// cannot be swapped afterwards, so Tuner.RefreshPool refuses.
	PoolBound bool
	// New builds the engine for one tuning session. pool is non-nil
	// exactly when the policy asked for one and the tuner could build
	// it; opts carries the shared knobs (Surrogate hyperparameters,
	// seeds) plus the engine-specific Options.EngineConfig.
	New func(sp *space.Space, opts Options, pool *Pool) (Model, Acquirer, error)
}

var (
	engineMu sync.RWMutex
	engines  = map[string]EngineSpec{}
)

// RegisterEngine adds an engine to the registry, keyed by lower-cased
// name. It panics on empty or duplicate names: registration happens
// in package init functions, where a clash is a programming error.
func RegisterEngine(spec EngineSpec) {
	name := strings.ToLower(spec.Name)
	if name == "" {
		panic("core: RegisterEngine with empty name")
	}
	if spec.New == nil {
		panic(fmt.Sprintf("core: RegisterEngine(%q) with nil factory", name))
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engines[name]; dup {
		panic(fmt.Sprintf("core: engine %q registered twice", name))
	}
	spec.Name = name
	engines[name] = spec
}

// LookupEngine fetches a registered engine by (case-insensitive)
// name.
func LookupEngine(name string) (EngineSpec, bool) {
	engineMu.RLock()
	defer engineMu.RUnlock()
	spec, ok := engines[strings.ToLower(name)]
	return spec, ok
}

// EngineNames lists the registered engine names, sorted. Note that
// engines register from their own packages (e.g. "geist" lives in
// internal/geist), so the list depends on what the binary imports.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	out := make([]string, 0, len(engines))
	for name := range engines {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
