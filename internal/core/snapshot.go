package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// Snapshot export: a History serialized as packed canonical vectors
// rather than per-event label maps. Journals record one JSON object
// per evaluation (human-tailable, append-friendly); a snapshot is
// read exactly once per restart and wants the opposite trade-off —
// raw little-endian float64 columns decode in microseconds where ten
// thousand label-map lines take tens of milliseconds. Configs are
// stored bit-exactly (discrete level indices and continuous values
// are both float64s already), so a history rebuilt from a snapshot is
// identical to the one that was packed: no label formatting or
// parsing sits in between.

// PackedObservations is a History's observation list in columnar
// form: Configs is the row-major N×P config matrix and Values the N
// objective values, both raw little-endian float64 bytes (the .snap
// file embeds them as-is; a JSON marshal would base64 them, which is
// exactly the whole-payload scan the binary layout exists to avoid).
// Extras carries the sparse per-row payloads (metrics maps,
// multi-objective vectors) for the rows that have them; scalar
// sessions pay nothing.
type PackedObservations struct {
	Configs []byte        `json:"configs"`
	Values  []byte        `json:"values"`
	Extras  []PackedExtra `json:"extras,omitempty"`
}

// PackedExtra is one observation's optional payload, keyed by its
// index in evaluation order.
type PackedExtra struct {
	Index      int                `json:"i"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Objectives []float64          `json:"objectives,omitempty"`
}

// packFloats encodes a float64 slice as little-endian bytes.
func packFloats(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// unpackFloats reverses packFloats, checking the element count.
func unpackFloats(buf []byte, want int) ([]float64, error) {
	if len(buf) != 8*want {
		return nil, fmt.Errorf("core: snapshot payload holds %d bytes, want %d", len(buf), 8*want)
	}
	out := make([]float64, want)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// PackObservations exports h's observations for snapshotting. The
// packed form round-trips through UnpackObservations bit-identically.
func PackObservations(h *History) PackedObservations {
	n := h.Len()
	p := h.Space().NumParams()
	configs := make([]float64, 0, n*p)
	values := make([]float64, n)
	var extras []PackedExtra
	for i := 0; i < n; i++ {
		o := h.At(i)
		configs = append(configs, o.Config...)
		values[i] = o.Value
		if o.Metrics != nil || o.Objectives != nil {
			extras = append(extras, PackedExtra{Index: i, Metrics: o.Metrics, Objectives: o.Objectives})
		}
	}
	return PackedObservations{Configs: packFloats(configs), Values: packFloats(values), Extras: extras}
}

// UnpackObservations rebuilds the observation list packed by
// PackObservations. n is the expected observation count (from the
// snapshot header); mismatched payload sizes and out-of-range extras
// are errors, so a corrupt snapshot fails loudly rather than
// resuming a truncated history.
func UnpackObservations(sp *space.Space, p PackedObservations, n int) ([]Observation, error) {
	dims := sp.NumParams()
	configs, err := unpackFloats(p.Configs, n*dims)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot configs: %w", err)
	}
	values, err := unpackFloats(p.Values, n)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot values: %w", err)
	}
	out := make([]Observation, n)
	for i := range out {
		out[i] = Observation{
			Config: space.Config(configs[i*dims : (i+1)*dims : (i+1)*dims]),
			Value:  values[i],
		}
	}
	for _, ex := range p.Extras {
		if ex.Index < 0 || ex.Index >= n {
			return nil, fmt.Errorf("core: snapshot extra for row %d outside %d observations", ex.Index, n)
		}
		out[ex.Index].Metrics = ex.Metrics
		out[ex.Index].Objectives = ex.Objectives
	}
	return out, nil
}
