package core

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// quadSpace is a discrete space with a clear optimum at (2, 3).
func quadSpace() *space.Space {
	return space.New(
		space.DiscreteInts("p", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("q", 0, 1, 2, 3, 4, 5, 6, 7),
	)
}

func quadObjective(c space.Config) float64 {
	dp := c[0] - 2
	dq := c[1] - 3
	return dp*dp + dq*dq
}

func TestTunerFindsOptimumRanking(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{
		InitialSamples: 10, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value != 0 {
		t.Fatalf("best = %+v, want the optimum (2,3)", best)
	}
	if tn.Evaluations() != 40 {
		t.Fatalf("evaluations = %d, want 40", tn.Evaluations())
	}
}

func TestTunerBeatsRandomOnAverage(t *testing.T) {
	// On a structured objective the surrogate-guided search must find
	// strictly better configurations than uniform random sampling at
	// the same budget, averaged over seeds.
	sp := space.New(
		space.DiscreteInts("a", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
		space.DiscreteInts("b", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
		space.DiscreteInts("c", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
	)
	obj := func(c space.Config) float64 {
		return math.Abs(c[0]-7) + math.Abs(c[1]-2)*1.5 + math.Abs(c[2]-5)*0.7
	}
	const budget = 60
	var tunerSum, randomSum float64
	const reps = 10
	for seed := uint64(0); seed < reps; seed++ {
		tn, err := NewTuner(sp, obj, Options{InitialSamples: 15, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		best, err := tn.Run(budget)
		if err != nil {
			t.Fatal(err)
		}
		tunerSum += best.Value

		// Random baseline with the same budget.
		rtn, err := NewTuner(sp, obj, Options{InitialSamples: budget, Seed: seed + 1000})
		if err != nil {
			t.Fatal(err)
		}
		rbest, err := rtn.Run(budget)
		if err != nil {
			t.Fatal(err)
		}
		randomSum += rbest.Value
	}
	if tunerSum >= randomSum {
		t.Fatalf("tuner (%v) not better than random (%v) over %d seeds", tunerSum, randomSum, reps)
	}
}

func TestTunerDeterministicForSeed(t *testing.T) {
	run := func() []float64 {
		tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 8, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Run(30); err != nil {
			t.Fatal(err)
		}
		return tn.History().Values()
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTunerNeverRepeatsConfigsRanking(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(64); err != nil { // the whole space
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	sp := quadSpace()
	for _, o := range tn.History().Observations() {
		k := sp.Key(o.Config)
		if seen[k] {
			t.Fatalf("config %v evaluated twice", o.Config)
		}
		seen[k] = true
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d/64 configs", len(seen))
	}
}

func TestTunerBudgetExceedsSpaceRejected(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(65); err == nil {
		t.Fatal("budget beyond space size accepted")
	}
}

func TestTunerBudgetBelowInitRejected(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(10); err == nil {
		t.Fatal("budget below initial samples accepted")
	}
}

func TestTunerOnStepSeesEveryEvaluation(t *testing.T) {
	var iters []int
	var count int
	tn, err := NewTuner(quadSpace(), quadObjective, Options{
		InitialSamples: 6, Seed: 5,
		OnStep: func(i int, o Observation) {
			iters = append(iters, i)
			count++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(20); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("OnStep fired %d times, want 20", count)
	}
	for i, it := range iters {
		if it != i {
			t.Fatalf("iteration numbering wrong: %v", iters)
		}
	}
}

func TestTunerProposalStrategyOnContinuousSpace(t *testing.T) {
	sp := space.New(space.Continuous("x", 0, 5))
	obj := func(c space.Config) float64 {
		return (c[0] - 1.5) * (c[0] - 1.5)
	}
	tn, err := NewTuner(sp, obj, Options{InitialSamples: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if tn.StrategyInUse() != Proposal {
		t.Fatalf("continuous space must force Proposal, got %v", tn.StrategyInUse())
	}
	best, err := tn.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best.Config[0]-1.5) > 0.5 {
		t.Fatalf("proposal strategy best x = %v, want near 1.5", best.Config[0])
	}
}

func TestTunerProposalOnDiscreteSpaceWorks(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{
		InitialSamples: 8, Seed: 17, Strategy: Proposal,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value > 2 {
		t.Fatalf("proposal best = %+v, want near optimum", best)
	}
	// No duplicates even under Proposal (finite space).
	seen := make(map[string]bool)
	sp := quadSpace()
	for _, o := range tn.History().Observations() {
		k := sp.Key(o.Config)
		if seen[k] {
			t.Fatalf("duplicate evaluation under proposal: %v", o.Config)
		}
		seen[k] = true
	}
}

func TestTunerExplicitCandidates(t *testing.T) {
	sp := quadSpace()
	// Restrict to a diagonal subset.
	var cands []space.Config
	for i := 0; i < 8; i++ {
		cands = append(cands, space.Config{float64(i), float64(i)})
	}
	tn, err := NewTuner(sp, quadObjective, Options{
		InitialSamples: 3, Seed: 2, Candidates: cands,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	// Best on the diagonal: (2,2) → 0+1 = 1 or (3,3) → 1+0 = 1.
	if best.Value != 1 {
		t.Fatalf("best on diagonal = %+v, want value 1", best)
	}
	for _, o := range tn.History().Observations() {
		if o.Config[0] != o.Config[1] {
			t.Fatalf("evaluated off-candidate config %v", o.Config)
		}
	}
}

func TestTunerDuplicateCandidatesRejected(t *testing.T) {
	cands := []space.Config{{0, 0}, {0, 0}}
	if _, err := NewTuner(quadSpace(), quadObjective, Options{Candidates: cands}); err == nil {
		t.Fatal("duplicate candidates accepted")
	}
}

func TestTunerNilObjectiveRejected(t *testing.T) {
	if _, err := NewTuner(quadSpace(), nil, Options{}); err == nil {
		t.Fatal("nil objective accepted")
	}
}

func TestRunUntilStall(t *testing.T) {
	evals := 0
	obj := func(c space.Config) float64 {
		evals++
		return quadObjective(c)
	}
	tn, err := NewTuner(quadSpace(), obj, Options{InitialSamples: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.RunUntilStall(64, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value > 1 {
		t.Fatalf("stall termination quit too early: best %v", best.Value)
	}
	if evals == 64 {
		t.Fatal("stall termination never triggered")
	}
}

func TestRunUntilStallValidatesLimit(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.RunUntilStall(30, 0, 0.01); err == nil {
		t.Fatal("stallLimit 0 accepted")
	}
}

func TestTunerSmallInitRejected(t *testing.T) {
	if _, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 1}); err == nil {
		t.Fatal("InitialSamples=1 accepted")
	}
}

func TestStepByStepMatchesRun(t *testing.T) {
	mk := func() *Tuner {
		tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 6, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}
	a := mk()
	if _, err := a.Run(25); err != nil {
		t.Fatal(err)
	}
	b := mk()
	for i := 0; i < 25; i++ {
		if _, err := b.Step(); err != nil {
			t.Fatal(err)
		}
	}
	av, bv := a.History().Values(), b.History().Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("Step sequence diverges from Run at %d", i)
		}
	}
}

func TestParallelScoringMatchesSerial(t *testing.T) {
	runWith := func(par int) []float64 {
		tn, err := NewTuner(quadSpace(), quadObjective, Options{
			InitialSamples: 6, Seed: 55, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Run(30); err != nil {
			t.Fatal(err)
		}
		return tn.History().Values()
	}
	serial := runWith(1)
	parallel := runWith(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel scoring changed the trajectory at step %d", i)
		}
	}
}
