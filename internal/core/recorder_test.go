package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestRecorderStreamsEvents(t *testing.T) {
	sp := quadSpace()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sp)
	tn, err := NewTuner(sp, quadObjective, Options{
		InitialSamples: 5, Seed: 4, OnStep: rec.OnStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(12); err != nil {
		t.Fatal(err)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if rec.Events() != 12 {
		t.Fatalf("events = %d", rec.Events())
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 12 {
		t.Fatalf("parsed %d events", len(events))
	}
	prevBest := events[0].BestSoFar
	for i, ev := range events {
		if ev.Iteration != i {
			t.Fatalf("iteration %d at position %d", ev.Iteration, i)
		}
		if len(ev.Config) != 2 {
			t.Fatalf("config map %v", ev.Config)
		}
		if ev.BestSoFar > prevBest {
			t.Fatalf("best_so_far increased at %d", i)
		}
		prevBest = ev.BestSoFar
	}
	if events[len(events)-1].BestSoFar != tn.Best().Value {
		t.Fatal("final best mismatch")
	}
}

func TestRecorderConfigLabels(t *testing.T) {
	sp := histSpace() // a: x/y/z, b: ints
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sp)
	rec.OnStep(0, Observation{Config: space.Config{2, 1}, Value: 3})
	out := buf.String()
	for _, want := range []string{`"a":"z"`, `"b":"2"`, `"value":3`} {
		if !strings.Contains(out, want) {
			t.Errorf("event missing %s: %s", want, out)
		}
	}
}

// TestRecorderZeroValueMinimizes pins the satellite contract: a
// recorder without SetDirection tracks best_so_far as the running
// minimum, exactly the legacy behavior.
func TestRecorderZeroValueMinimizes(t *testing.T) {
	sp := histSpace()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sp)
	values := []float64{5, 3, 4, 2, 6}
	for i, v := range values {
		rec.OnStep(i, Observation{Config: space.Config{0, 0}, Value: v})
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantBest := []float64{5, 3, 3, 2, 2}
	for i, ev := range events {
		if ev.BestSoFar != wantBest[i] {
			t.Fatalf("minimize best_so_far[%d] = %v, want %v", i, ev.BestSoFar, wantBest[i])
		}
	}
}

func TestRecorderMaximizeDirection(t *testing.T) {
	sp := histSpace()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sp)
	rec.SetDirection(Maximize)
	values := []float64{5, 3, 7, 2, 6}
	for i, v := range values {
		rec.OnStep(i, Observation{Config: space.Config{0, 0}, Value: v})
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantBest := []float64{5, 5, 7, 7, 7}
	for i, ev := range events {
		if ev.BestSoFar != wantBest[i] {
			t.Fatalf("maximize best_so_far[%d] = %v, want %v", i, ev.BestSoFar, wantBest[i])
		}
	}
	// Switching direction mid-stream would corrupt the running best.
	defer func() {
		if recover() == nil {
			t.Fatal("SetDirection after events should panic")
		}
	}()
	rec.SetDirection(Minimize)
}

// TestRecorderMetricsRoundTrip: multi-metric observations journal
// their raw metrics and parse back bit-identically; metric-less
// events omit the field.
func TestRecorderMetricsRoundTrip(t *testing.T) {
	sp := histSpace()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sp)
	metrics := map[string]float64{"p95_latency_ms": 12.25, "cost": 0.1}
	rec.OnStep(0, Observation{Config: space.Config{0, 0}, Value: 1, Metrics: metrics})
	rec.OnStep(1, Observation{Config: space.Config{1, 0}, Value: 2})
	if strings.Count(buf.String(), "metrics") != 1 {
		t.Fatalf("metric-less event should omit the metrics field: %s", buf.String())
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events[0].Metrics) != 2 || events[0].Metrics["p95_latency_ms"] != 12.25 || events[0].Metrics["cost"] != 0.1 {
		t.Fatalf("metrics round-trip = %v", events[0].Metrics)
	}
	if events[1].Metrics != nil {
		t.Fatalf("second event metrics = %v, want nil", events[1].Metrics)
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
