package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestRecorderStreamsEvents(t *testing.T) {
	sp := quadSpace()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sp)
	tn, err := NewTuner(sp, quadObjective, Options{
		InitialSamples: 5, Seed: 4, OnStep: rec.OnStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(12); err != nil {
		t.Fatal(err)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if rec.Events() != 12 {
		t.Fatalf("events = %d", rec.Events())
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 12 {
		t.Fatalf("parsed %d events", len(events))
	}
	prevBest := events[0].BestSoFar
	for i, ev := range events {
		if ev.Iteration != i {
			t.Fatalf("iteration %d at position %d", ev.Iteration, i)
		}
		if len(ev.Config) != 2 {
			t.Fatalf("config map %v", ev.Config)
		}
		if ev.BestSoFar > prevBest {
			t.Fatalf("best_so_far increased at %d", i)
		}
		prevBest = ev.BestSoFar
	}
	if events[len(events)-1].BestSoFar != tn.Best().Value {
		t.Fatal("final best mismatch")
	}
}

func TestRecorderConfigLabels(t *testing.T) {
	sp := histSpace() // a: x/y/z, b: ints
	var buf bytes.Buffer
	rec := NewRecorder(&buf, sp)
	rec.OnStep(0, Observation{Config: space.Config{2, 1}, Value: 3})
	out := buf.String()
	for _, want := range []string{`"a":"z"`, `"b":"2"`, `"value":3`} {
		if !strings.Contains(out, want) {
			t.Errorf("event missing %s: %s", want, out)
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
