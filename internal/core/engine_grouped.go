package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// The "grouped" engine factors acquisition over parameter groups — the
// BoGraph direction for many-parameter spaces. The flat TPE surrogate
// is already fully per-dimension factorized and its good/bad split is
// a function of the observed values alone, so a group's pg/pb
// surrogate is exactly the restriction of the flat surrogate to the
// group's dimensions: one incremental flat fit (with its existing
// (generation, pendingHash) cache keys) serves every group, and a
// per-group view costs a slice of densities, never a refit.
//
// What the grouping changes is acquisition. Flat sampling draws whole
// configurations from the joint pg — at 40 dimensions the chance that
// one draw lands in the good region of every dimension simultaneously
// is tiny, so the sampled candidate set rarely contains the separable
// optimum. The grouped acquirer instead finds each group's best
// sub-assignments independently (streaming enumeration when the
// sub-grid is small, pg-draws per subspace otherwise), composes them
// coordinate-wise, and polishes across groups by ranking the composed
// candidates with the full-joint score. Per-ask cost is bounded by
// per-group work (groupEnumerateLimit / CandidateSamples) plus the
// polish width — it does not grow with the total grid size.
//
// A grouping with one group over every parameter is definitionally the
// flat joint; the acquirer routes that case straight through the
// sampling acquirer, so single-group runs are bit-identical to engine
// "sampling" (pinned by TestGroupedSingleGroupMatchesSampling).

const (
	// groupEnumerateLimit is the sub-grid size up to which a group's
	// sub-assignments are enumerated exhaustively (streaming odometer
	// walk, no materialization); larger groups fall back to pg-draws
	// per subspace.
	groupEnumerateLimit = 4096
	// topPerGroup is how many best sub-assignments each group
	// contributes to the cross-group composition/polish pass.
	topPerGroup = 16
	// polishDraws is how many joint resamples of the per-group top
	// lists the polish pass ranks with the full-joint score (scaled by
	// k for batch asks).
	polishDraws = 64
	// maxAutoGroupSize caps group size under auto-grouping so one noisy
	// interaction estimate cannot glue the space back into a flat joint.
	maxAutoGroupSize = 8
	// autoInteractionEps is the pairwise-interaction excess below which
	// auto-grouping treats two parameters as independent.
	autoInteractionEps = 0.02
	// autoJointLimit bounds the joint-histogram size (cardinality
	// product) auto-grouping is willing to estimate per pair.
	autoJointLimit = 1024
)

func init() {
	RegisterEngine(EngineSpec{
		Name: "grouped",
		Pool: PoolUnused,
		New: func(sp *space.Space, opts Options, pool *Pool) (Model, Acquirer, error) {
			m, err := NewGroupedModel(sp, opts)
			if err != nil {
				return nil, nil, err
			}
			return m, groupedAcquirer{}, nil
		},
	})
}

// ParseGroups parses the CLI/flag spelling of a grouping —
// semicolon-separated groups of comma-separated parameter names, e.g.
// "opt_level,unroll;tile,align" — into the Options.Groups shape. Empty
// input returns nil (auto-grouping); blank names are dropped.
func ParseGroups(s string) [][]string {
	var out [][]string
	for _, group := range strings.Split(s, ";") {
		var names []string
		for _, name := range strings.Split(group, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		if len(names) > 0 {
			out = append(out, names)
		}
	}
	return out
}

// ValidateGroups checks a user-supplied grouping against a space
// without building an engine: every name must exist and appear at most
// once. Servers call it before journaling a session create, so a bad
// grouping is a 400, not a poisoned journal.
func ValidateGroups(sp *space.Space, groups [][]string) error {
	if groups == nil {
		return nil
	}
	_, err := resolveGroups(sp, groups)
	return err
}

// resolveGroups turns name lists into sorted dimension-index groups,
// appending every unmentioned parameter as a singleton group (in
// declaration order), so a partial spec is a valid partition.
func resolveGroups(sp *space.Space, spec [][]string) ([][]int, error) {
	used := make(map[int]bool, sp.NumParams())
	var groups [][]int
	for _, names := range spec {
		var dims []int
		for _, name := range names {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			d := sp.IndexOf(name)
			if d < 0 {
				return nil, fmt.Errorf("core: groups: unknown parameter %q", name)
			}
			if used[d] {
				return nil, fmt.Errorf("core: groups: parameter %q appears more than once", name)
			}
			used[d] = true
			dims = append(dims, d)
		}
		if len(dims) == 0 {
			continue
		}
		sort.Ints(dims)
		groups = append(groups, dims)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: groups: no parameters named")
	}
	for d := 0; d < sp.NumParams(); d++ {
		if !used[d] {
			groups = append(groups, []int{d})
		}
	}
	return groups, nil
}

// GroupedModel is the flat TPEModel plus a resolved (or
// to-be-auto-proposed) partition of the dimensions. Scoring, sampling,
// and introspection delegate to the flat model — the factorized
// surrogate restricted to a group IS the group's surrogate — while the
// grouped acquirer reads the partition and the per-group caches.
type GroupedModel struct {
	sp   *space.Space
	flat *TPEModel

	groups [][]int // resolved partition; nil until the first fit when auto
	auto   bool
	subs   []*groupSub
}

// NewGroupedModel validates Options.Groups against the space (nil
// Groups defers to auto-grouping at the first fit). The grouped
// engine's per-subspace enumeration needs a fully discrete space.
func NewGroupedModel(sp *space.Space, opts Options) (*GroupedModel, error) {
	if !sp.AllDiscrete() {
		return nil, fmt.Errorf("core: the grouped engine needs a fully discrete space (for continuous parameters use proposal or sampling)")
	}
	m := &GroupedModel{sp: sp, flat: &TPEModel{cfg: opts.Surrogate}}
	if opts.Groups != nil {
		groups, err := resolveGroups(sp, opts.Groups)
		if err != nil {
			return nil, err
		}
		m.setGroups(groups)
	} else {
		m.auto = true
	}
	return m, nil
}

// setGroups installs a resolved partition and builds the per-group
// acquisition state.
func (m *GroupedModel) setGroups(groups [][]int) {
	m.groups = groups
	m.subs = make([]*groupSub, len(groups))
	for i, dims := range groups {
		grid := uint64(1)
		for _, d := range dims {
			card := uint64(m.sp.Param(d).Cardinality())
			if card == 0 || grid > (1<<62)/card {
				grid = 0 // overflow: treat as too large to enumerate
				break
			}
			grid *= card
		}
		m.subs[i] = &groupSub{dims: dims, grid: grid}
	}
}

// Groups reports the resolved partition as parameter-name lists (nil
// before the first fit under auto-grouping).
func (m *GroupedModel) Groups() [][]string {
	if m.groups == nil {
		return nil
	}
	out := make([][]string, len(m.groups))
	for i, dims := range m.groups {
		names := make([]string, len(dims))
		for j, d := range dims {
			names[j] = m.sp.Param(d).Name
		}
		out[i] = names
	}
	return out
}

// degenerate reports whether the partition is one group over every
// parameter — the case the acquirer routes through the flat sampling
// path for exact single-group degeneracy.
func (m *GroupedModel) degenerate() bool {
	return len(m.groups) == 1 && len(m.groups[0]) == m.sp.NumParams()
}

// Fit delegates to the incremental flat fit (whose (generation,
// pendingHash) caches make repeat calls free), then — once, at the
// first fit — resolves the auto-proposed grouping from the fitted
// densities. The partition is frozen afterwards: regrouping mid-run
// would invalidate every per-group cache for no measured gain.
func (m *GroupedModel) Fit(h *History) error {
	if err := m.flat.Fit(h); err != nil {
		return err
	}
	if m.groups == nil {
		m.setGroups(m.autoGroups(h))
	}
	return nil
}

// Observe is a no-op, like the flat model's: Fit refits incrementally.
func (m *GroupedModel) Observe(obs Observation) { m.flat.Observe(obs) }

// Score is the full-joint score — identical to the sum of the
// per-group partial scores, since the surrogate factorizes per
// dimension.
func (m *GroupedModel) Score(c space.Config) float64 { return m.flat.Score(c) }

// ScoreBatch scores a columnar batch with the full-joint surrogate.
func (m *GroupedModel) ScoreBatch(b *space.Batch, dst []float64) { m.flat.ScoreBatch(b, dst) }

// Sample draws from the joint good density.
func (m *GroupedModel) Sample(r *stats.RNG) space.Config { return m.flat.Sample(r) }

// Importance reports the per-parameter JS divergences of the flat fit
// — the same marginals auto-grouping starts from.
func (m *GroupedModel) Importance() []float64 { return m.flat.Importance() }

// Marginals exposes the fitted densities for rendering.
func (m *GroupedModel) Marginals() []MarginalReport { return m.flat.Marginals() }

// Surrogate returns the most recently fitted flat surrogate.
func (m *GroupedModel) Surrogate() *Surrogate { return m.flat.Surrogate() }

// autoGroups proposes a partition from the fitted surrogate: greedily
// merge parameter pairs whose joint good/bad divergence exceeds what
// the product of their marginals explains (positive interaction
// excess), strongest pairs first, capped at maxAutoGroupSize;
// everything else stays a singleton. With 20–40 initial observations
// the estimates are noisy — a missed interaction costs only polish
// quality, while a spurious merge costs one bigger sub-enumeration —
// so the epsilon errs toward singletons.
func (m *GroupedModel) autoGroups(h *History) [][]int {
	s := m.flat.current()
	n := m.sp.NumParams()
	obs := h.Observations()
	if h.PendingLen() > 0 {
		obs = h.Fantasized().Observations()
	}
	type pairScore struct {
		i, j   int
		excess float64
	}
	var pairs []pairScore
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ci := m.sp.Param(i).Cardinality()
			cj := m.sp.Param(j).Cardinality()
			if ci*cj > autoJointLimit {
				continue
			}
			excess := interactionExcess(s, obs, i, j, ci, cj)
			if excess > autoInteractionEps {
				pairs = append(pairs, pairScore{i: i, j: j, excess: excess})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].excess != pairs[b].excess {
			return pairs[a].excess > pairs[b].excess
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i], size[i] = i, 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range pairs {
		ri, rj := find(p.i), find(p.j)
		if ri == rj || size[ri]+size[rj] > maxAutoGroupSize {
			continue
		}
		parent[rj] = ri
		size[ri] += size[rj]
	}
	byRoot := make(map[int][]int, n)
	var roots []int
	for d := 0; d < n; d++ {
		r := find(d)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], d)
	}
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, byRoot[r])
	}
	return groups
}

// interactionExcess measures how much more the good and bad partitions
// disagree about the joint (i, j) histogram than about the product of
// their marginals: ≈ 0 when the two parameters act independently,
// positive when their joint carries structure the factorized surrogate
// cannot represent.
func interactionExcess(s *Surrogate, obs []Observation, i, j, ci, cj int) float64 {
	thr := s.Threshold()
	goodJoint := make([]float64, ci*cj)
	badJoint := make([]float64, ci*cj)
	for k := range goodJoint {
		goodJoint[k], badJoint[k] = 1, 1 // Laplace smoothing, like the marginals
	}
	for _, o := range obs {
		cell := int(o.Config[i])*cj + int(o.Config[j])
		if o.Value <= thr {
			goodJoint[cell]++
		} else {
			badJoint[cell]++
		}
	}
	normalizeProbs(goodJoint)
	normalizeProbs(badJoint)
	gi, gj := s.good[i].probs(), s.good[j].probs()
	bi, bj := s.bad[i].probs(), s.bad[j].probs()
	goodProd := make([]float64, ci*cj)
	badProd := make([]float64, ci*cj)
	for a := 0; a < ci; a++ {
		for b := 0; b < cj; b++ {
			goodProd[a*cj+b] = gi[a] * gj[b]
			badProd[a*cj+b] = bi[a] * bj[b]
		}
	}
	return stats.JSDivergence(goodJoint, badJoint) - stats.JSDivergence(goodProd, badProd)
}

func normalizeProbs(p []float64) {
	var sum float64
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		return
	}
	for k := range p {
		p[k] /= sum
	}
}

// groupSub is one group's acquisition state: its dimensions, sub-grid
// size, and the cached top-m sub-assignments under the current fit.
// The cache is keyed by the same (generation, pending hash) pair as
// the flat fit caches, so an ask between observations recomputes
// nothing per group.
type groupSub struct {
	dims []int  // parameter indices, ascending
	grid uint64 // sub-grid size (0 = overflows uint64 bounds)

	top       [][]float64 // best sub-assignments (level indices per dim), score desc
	topScores []float64
	topGen    uint64
	topPend   uint64
	topOK     bool
}

// refresh recomputes the group's top sub-assignments under the current
// surrogate unless the (generation, pending hash) key is unchanged.
func (g *groupSub) refresh(a *Acquisition, s *Surrogate, gen, pend uint64) error {
	if g.topOK && g.topGen == gen && g.topPend == pend {
		return nil
	}
	if g.grid != 0 && g.grid <= groupEnumerateLimit {
		g.enumerateTop(s, topPerGroup)
	} else {
		g.sampleTop(a, s, topPerGroup)
	}
	if len(g.top) == 0 {
		return fmt.Errorf("core: grouped acquisition: group %v produced no sub-assignments", g.dims)
	}
	g.topGen, g.topPend, g.topOK = gen, pend, true
	return nil
}

// enumerateTop walks the group's sub-grid with a mixed-radix odometer
// (the per-subspace use of the streaming-enumeration idea: nothing is
// materialized beyond the top-m list) and keeps the m best
// sub-assignments by the group's good-density mass Σ log pg, ties
// broken by enumeration order.
//
// Deliberately NOT log pg − log pb: with a handful of observations
// spread over 40 dimensions, the bad density's Laplace-smoothed tail
// assigns tiny pb to never-visited corners, so a pg/pb argmax over the
// FULL sub-grid chases unsupported extrapolations and stalls the
// search (measured on compile40: pg/pb composition loses to flat
// sampling on 8/10 seeds, pg-mass composition beats it on 10/10). The
// pg restriction mirrors what the flat sampling engine gets for free
// by drawing candidates from pg; pb still gets its say in the final
// full-joint polish ranking.
func (g *groupSub) enumerateTop(s *Surrogate, m int) {
	g.top = g.top[:0]
	g.topScores = g.topScores[:0]
	cards := make([]int, len(g.dims))
	for i, d := range g.dims {
		cards[i] = s.sp.Param(d).Cardinality()
	}
	idx := make([]int, len(g.dims))
	vals := make([]float64, len(g.dims))
	for {
		var score float64
		for i, d := range g.dims {
			vals[i] = float64(idx[i])
			score += s.good[d].logProb(vals[i])
		}
		g.push(vals, score, m)
		i := len(idx) - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < cards[i] {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// sampleTop draws sub-assignments from the group's good densities (the
// per-subspace analogue of the sampling engine's pg-draws; index-space
// rejection is unnecessary because a sub-assignment carries no
// constraint of its own), deduplicates, and keeps the m best by the
// group's good-density mass Σ log pg (see enumerateTop for why pb is
// excluded here).
func (g *groupSub) sampleTop(a *Acquisition, s *Surrogate, m int) {
	draws := a.CandidateSamples
	if draws <= 0 {
		draws = DefaultCandidateSamples
	}
	g.top = g.top[:0]
	g.topScores = g.topScores[:0]
	seen := make(map[string]bool, draws)
	vals := make([]float64, len(g.dims))
	var key strings.Builder
	for i := 0; i < draws; i++ {
		key.Reset()
		for vi, d := range g.dims {
			vals[vi] = s.good[d].sample(a.RNG)
			key.WriteString(strconv.Itoa(int(vals[vi])))
			key.WriteByte('|')
		}
		ks := key.String()
		if seen[ks] {
			continue
		}
		seen[ks] = true
		var score float64
		for vi, d := range g.dims {
			score += s.good[d].logProb(vals[vi])
		}
		g.push(vals, score, m)
	}
}

// push inserts a sub-assignment into the top-m list, keeping it sorted
// by (score desc, arrival order asc).
func (g *groupSub) push(vals []float64, score float64, m int) {
	pos := sort.Search(len(g.topScores), func(i int) bool { return g.topScores[i] < score })
	if pos >= m {
		return
	}
	v := append([]float64(nil), vals...)
	g.top = append(g.top, nil)
	copy(g.top[pos+1:], g.top[pos:])
	g.top[pos] = v
	g.topScores = append(g.topScores, 0)
	copy(g.topScores[pos+1:], g.topScores[pos:])
	g.topScores[pos] = score
	if len(g.top) > m {
		g.top = g.top[:m]
		g.topScores = g.topScores[:m]
	}
}

// apply writes the sub-assignment into the full configuration's group
// slots.
func (g *groupSub) apply(c space.Config, vals []float64) {
	for i, d := range g.dims {
		c[d] = vals[i]
	}
}

// groupedAcquirer composes per-group argmaxes and polishes across
// groups with the full-joint score.
type groupedAcquirer struct{}

func (groupedAcquirer) Propose(a *Acquisition, k int) ([]space.Config, error) {
	m, ok := a.Model.(*GroupedModel)
	if !ok {
		return nil, fmt.Errorf("core: grouped acquisition needs a *GroupedModel, got %T", a.Model)
	}
	if m.groups == nil {
		return nil, fmt.Errorf("core: grouped acquisition before the first fit")
	}
	if m.degenerate() {
		return samplingAcquirer{}.Propose(a, k)
	}
	s := m.flat.current()
	gen := a.History.Generation()
	pend := a.History.PendingHash()
	for _, g := range m.subs {
		if err := g.refresh(a, s, gen, pend); err != nil {
			return nil, err
		}
	}

	// Candidate set: the coordinate-wise argmax composition, the base
	// with each group's slot swapped for its runner-up sub-assignments,
	// and joint resamples of the per-group top lists — so the polish
	// ranking sees both local alternatives and cross-group mixes.
	var cands []space.Config
	seen := make(map[string]bool)
	add := func(c space.Config) {
		key := a.Space.Key(c)
		if seen[key] {
			return
		}
		seen[key] = true
		cands = append(cands, c)
	}
	base := make(space.Config, a.Space.NumParams())
	for _, g := range m.subs {
		g.apply(base, g.top[0])
	}
	add(base.Clone())
	for _, g := range m.subs {
		for j := 1; j < len(g.top); j++ {
			c := base.Clone()
			g.apply(c, g.top[j])
			add(c)
		}
	}
	// Anchor a second composition family on the incumbent: the best
	// observed configuration with one group at a time swapped for the
	// surrogate's top sub-assignments. These are coordinate-ascent
	// moves on the true objective — they keep acquisition productive
	// when the surrogate mode is off on a few groups, because every
	// other group stays at values that measurably worked.
	if a.History.Len() > 0 {
		incumbent := a.History.Best().Config
		for _, g := range m.subs {
			for _, top := range g.top {
				c := incumbent.Clone()
				g.apply(c, top)
				add(c)
			}
			// Within-group single-coordinate flips of the incumbent —
			// the fine-grained moves a whole-group swap skips over.
			// Bounded by the group's total cardinality, not its grid.
			for _, d := range g.dims {
				card := a.Space.Param(d).Cardinality()
				for lvl := 0; lvl < card; lvl++ {
					if float64(lvl) == incumbent[d] {
						continue
					}
					c := incumbent.Clone()
					c[d] = float64(lvl)
					add(c)
				}
			}
		}
	}
	draws := polishDraws
	if k > 1 {
		draws *= k
	}
	for i := 0; i < draws; i++ {
		c := make(space.Config, a.Space.NumParams())
		for _, g := range m.subs {
			g.apply(c, g.top[a.RNG.Intn(len(g.top))])
		}
		add(c)
	}

	// Filter: structural validity (a cross-group constraint can reject
	// a composition), the evaluated set, and leased work.
	kept := cands[:0]
	for _, c := range cands {
		if !a.Space.Valid(c) || a.History.Contains(c) || a.skips(c) {
			continue
		}
		kept = append(kept, c)
	}
	if len(kept) == 0 {
		// Every composition is evaluated, leased, or invalid — explore
		// uniformly, as the sampling engine does when pg collapses.
		for try := 0; try < 100000; try++ {
			c := a.Space.Sample(a.RNG)
			if !a.History.Contains(c) && !a.skips(c) {
				return []space.Config{c}, nil
			}
		}
		return nil, fmt.Errorf("core: grouped acquisition exhausted the space")
	}

	// Cross-group polish: rank the composed candidates with the
	// full-joint score, so inter-group tradeoffs the per-group argmaxes
	// cannot see settle the final picks.
	batch, err := space.NewBatch(a.Space, kept)
	if err != nil {
		return nil, err
	}
	scores := ScoreAll(a.Model, batch, a.Parallelism)
	if k == 1 {
		best := 0
		for i := 1; i < len(kept); i++ {
			if scores[i] > scores[best] {
				best = i
			}
		}
		return []space.Config{kept[best]}, nil
	}
	order := make([]int, len(kept))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if scores[order[x]] != scores[order[y]] {
			return scores[order[x]] > scores[order[y]]
		}
		return order[x] < order[y]
	})
	if len(order) > k {
		order = order[:k]
	}
	out := make([]space.Config, len(order))
	for i, idx := range order {
		out[i] = kept[idx]
	}
	return out, nil
}
