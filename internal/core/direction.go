package core

import "fmt"

// Direction is the optimization sense of an objective. The framework's
// internals always minimize — the paper's runtime/energy metrics are
// lower-is-better — so maximize objectives are handled by canonical
// sign-flipping at the edges (see Canonical) and by direction-aware
// best-so-far tracking (Recorder.SetDirection). The zero value is
// Minimize, preserving every legacy code path bit for bit.
type Direction int

const (
	// Minimize: lower values are better (the default everywhere).
	Minimize Direction = iota
	// Maximize: higher values are better.
	Maximize
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Better reports whether a is strictly better than b under d.
func (d Direction) Better(a, b float64) bool {
	if d == Maximize {
		return a > b
	}
	return a < b
}

// Canonical maps a natural-unit value onto the framework's
// minimize-oriented scale: the identity for Minimize, negation for
// Maximize. It is its own inverse, so it also maps canonical values
// back to natural units.
func (d Direction) Canonical(v float64) float64 {
	if d == Maximize {
		return -v
	}
	return v
}
