package core

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestMarginalsDiscrete(t *testing.T) {
	h := buildTestHistory(t) // a=0 good, a=2 bad, b irrelevant
	s, err := BuildSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reports := s.Marginals()
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	a := reports[0]
	if a.Param != "a" || len(a.Levels) != 3 {
		t.Fatalf("report a wrong: %+v", a)
	}
	// Levels sorted by lift: "x" (level 0, the good one) first.
	if a.Levels[0].Label != "x" {
		t.Fatalf("top level = %s, want x", a.Levels[0].Label)
	}
	if a.Levels[0].Lift <= 1 {
		t.Fatalf("good level lift = %v, want > 1", a.Levels[0].Lift)
	}
	last := a.Levels[len(a.Levels)-1]
	if last.Lift >= 1 {
		t.Fatalf("bad level lift = %v, want < 1", last.Lift)
	}
	if a.Importance <= reports[1].Importance {
		t.Fatal("relevant parameter not more important")
	}
}

func TestMarginalsContinuousPeak(t *testing.T) {
	sp := space.New(space.Continuous("x", 0, 10))
	h := NewHistory(sp)
	for _, x := range []float64{1.8, 2.0, 2.2, 2.1, 1.9} {
		h.MustAdd(space.Config{x}, 1)
	}
	for _, x := range []float64{5, 6, 7, 8, 9, 5.5, 6.5, 7.5, 8.5, 9.5,
		4.8, 6.2, 7.7, 8.8, 9.2, 5.2, 6.8, 7.2, 8.2, 9.8} {
		h.MustAdd(space.Config{x}, 10+x)
	}
	s, err := BuildSurrogate(h, SurrogateConfig{Quantile: 0.2, Bandwidth: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	reports := s.Marginals()
	if math.Abs(reports[0].GoodPeak-2.0) > 0.5 {
		t.Fatalf("good peak at %v, want ~2", reports[0].GoodPeak)
	}
	if len(reports[0].Levels) != 0 {
		t.Fatal("continuous report should have no levels")
	}
}

func TestRenderMarginals(t *testing.T) {
	h := buildTestHistory(t)
	s, err := BuildSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderMarginals(s.Marginals())
	if !strings.Contains(out, "importance") || !strings.Contains(out, "best levels:") {
		t.Fatalf("render missing fields:\n%s", out)
	}
	// Sorted by importance: parameter "a" line first.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "a") {
		t.Fatalf("most important parameter not first:\n%s", out)
	}
}
