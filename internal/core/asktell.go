package core

import (
	"fmt"
	"time"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// Ask/tell driving: the Tuner's SelectBatch/Observe pair already
// decouples selection from evaluation, but a long-running service
// needs one more piece of bookkeeping — *leases*. A worker that asks
// for candidates may crash before reporting results; without leases
// its candidates would either be re-suggested to the next worker
// (duplicate work) or stranded forever (lost coverage). AskTell
// tracks every outstanding candidate with a deadline: while the lease
// is live the candidate is never handed out again, and once it
// expires the candidate silently returns to the pool.
//
// AskTell is not safe for concurrent use; callers (the hiperbotd
// session layer) serialize access with their own lock.

// Lease records one outstanding candidate: handed to a caller of Ask,
// not yet reported through Tell.
type Lease struct {
	// Config is the leased candidate.
	Config space.Config
	// Expires is the deadline after which the lease lapses and the
	// candidate may be suggested again. The zero time never expires.
	Expires time.Time
}

// AskTell wraps a Tuner with lease bookkeeping for service-style
// driving: Ask leases candidates, Tell reports results (idempotently)
// and releases the matching lease.
type AskTell struct {
	t      *Tuner
	leases map[string]Lease
}

// NewAskTell wraps t. The tuner must not be driven through Step/Run
// concurrently with Ask/Tell.
func NewAskTell(t *Tuner) *AskTell {
	return &AskTell{t: t, leases: make(map[string]Lease)}
}

// Tuner returns the wrapped tuner.
func (a *AskTell) Tuner() *Tuner { return a.t }

// InitialPhase reports whether the tuner is still collecting its
// initial random samples (during which Ask returns uniform draws
// rather than surrogate-guided selections).
func (a *AskTell) InitialPhase() bool {
	return a.t.Evaluations() < a.t.InitialSamples()
}

// Leases returns the number of outstanding (non-expired) leases as of
// now.
func (a *AskTell) Leases(now time.Time) int {
	a.expire(now)
	return len(a.leases)
}

// expire drops every lease whose deadline has passed.
func (a *AskTell) expire(now time.Time) {
	for key, l := range a.leases {
		if !l.Expires.IsZero() && now.After(l.Expires) {
			delete(a.leases, key)
		}
	}
}

// Ask leases up to k distinct, not-yet-evaluated, not-currently-leased
// configurations. During the initial phase candidates are uniform
// random draws; afterwards they come from SelectBatch (requested with
// enough headroom that filtering out live leases still fills the
// batch). ttl <= 0 leases forever. A short (or empty) result means
// the unevaluated pool net of live leases is smaller than k.
func (a *AskTell) Ask(k int, ttl time.Duration, now time.Time) ([]space.Config, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: Ask with k < 1")
	}
	a.expire(now)
	leased := func(c space.Config) bool {
		_, ok := a.leases[a.t.sp.Key(c)]
		return ok
	}

	var picks []space.Config
	if a.InitialPhase() {
		var err error
		picks, err = a.t.SelectInitial(k, leased)
		if err != nil {
			return nil, err
		}
	} else {
		batch, err := a.t.SelectBatch(k + len(a.leases))
		if err != nil {
			return nil, err
		}
		for _, c := range batch {
			if len(picks) >= k {
				break
			}
			if !leased(c) {
				picks = append(picks, c)
			}
		}
	}

	deadline := time.Time{}
	if ttl > 0 {
		deadline = now.Add(ttl)
	}
	for _, c := range picks {
		a.leases[a.t.sp.Key(c)] = Lease{Config: c.Clone(), Expires: deadline}
	}
	return picks, nil
}

// Tell reports an evaluated configuration and releases its lease (if
// any). Duplicate reports of an already-evaluated configuration are
// idempotent: they release the lease and return added=false with no
// error, so retried deliveries from workers are harmless. The
// configuration need not have been leased — unsolicited results are
// folded in too. Structurally invalid configurations error without
// touching the history.
func (a *AskTell) Tell(c space.Config, value float64) (added bool, err error) {
	return a.TellObs(Observation{Config: c, Value: value})
}

// TellObs is Tell for a full observation (raw metrics and canonical
// objective vector included) — the wire path for multi-metric results.
func (a *AskTell) TellObs(obs Observation) (added bool, err error) {
	if err := a.t.sp.Check(obs.Config); err != nil {
		return false, err
	}
	key := a.t.sp.Key(obs.Config)
	if a.t.history.Contains(obs.Config) {
		delete(a.leases, key)
		return false, nil
	}
	if err := a.t.ObserveObs(obs); err != nil {
		return false, err
	}
	delete(a.leases, key)
	return true, nil
}
