package core

import (
	"fmt"
	"time"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// Ask/tell driving: the Tuner's SelectBatch/Observe pair already
// decouples selection from evaluation, but a long-running service
// needs one more piece of bookkeeping — *leases*. A worker that asks
// for candidates may crash before reporting results; without leases
// its candidates would either be re-suggested to the next worker
// (duplicate work) or stranded forever (lost coverage). AskTell
// tracks every outstanding candidate with a deadline: while the lease
// is live the candidate is never handed out again, and once it
// expires the candidate silently returns to the pool.
//
// Leases are pending-aware: every leased configuration is fantasized
// into the history's pending overlay (History.AddPending) so fits see
// it as a constant-liar observation, and Ask selects one candidate at
// a time — fantasizing each pick before the next — so a single batch
// is internally diverse and concurrent askers are steered away from
// in-flight work. A released lease (result told, expiry, or renewal
// lapse) drops its fantasy with it.
//
// AskTell is not safe for concurrent use; callers (the hiperbotd
// session layer) serialize access with their own lock.

// Lease records one outstanding candidate: handed to a caller of Ask,
// not yet reported through Tell.
type Lease struct {
	// Config is the leased candidate.
	Config space.Config
	// Expires is the deadline after which the lease lapses and the
	// candidate may be suggested again. The zero time never expires.
	Expires time.Time

	// ver matches the lease to its live expiry-heap entry; renewals
	// bump it, orphaning the superseded heap entries (lazy deletion).
	ver uint64
}

// AskTell wraps a Tuner with lease bookkeeping for service-style
// driving: Ask leases candidates, Tell reports results (idempotently)
// and releases the matching lease.
type AskTell struct {
	t      *Tuner
	leases map[string]Lease
	heap   leaseHeap // expiry-ordered; never holds forever-leases
	ver    uint64    // monotonic heap-entry version counter

	suggested map[string]bool // every key ever handed out by Ask
	dups      int64           // re-suggestions of a previously handed-out key
}

// NewAskTell wraps t. The tuner must not be driven through Step/Run
// concurrently with Ask/Tell.
func NewAskTell(t *Tuner) *AskTell {
	return &AskTell{
		t:         t,
		leases:    make(map[string]Lease),
		suggested: make(map[string]bool),
	}
}

// Tuner returns the wrapped tuner.
func (a *AskTell) Tuner() *Tuner { return a.t }

// InitialPhase reports whether the tuner is still collecting its
// initial random samples (during which Ask returns uniform draws
// rather than surrogate-guided selections).
func (a *AskTell) InitialPhase() bool {
	return a.t.Evaluations() < a.t.InitialSamples()
}

// Leases returns the number of outstanding (non-expired) leases as of
// now. Each live lease has exactly one pending fantasy in the history.
func (a *AskTell) Leases(now time.Time) int {
	a.expire(now)
	return len(a.leases)
}

// DuplicateSuggestions counts configurations Ask handed out more than
// once over the session's lifetime. Under live leases it stays 0 by
// construction; it only advances when an expired (or stolen) lease's
// candidate is legitimately re-issued — the observable duplicate-work
// metric surfaced per session and in /metrics.
func (a *AskTell) DuplicateSuggestions() int64 { return a.dups }

// expire drops every lease whose deadline has passed, popping the
// expiry-ordered heap instead of walking the lease map: O(e·log n)
// for e expirations, so sessions with thousands of live leases pay
// nothing on the common no-expiry call. Heap entries orphaned by
// renewals or releases are skipped via the version check.
func (a *AskTell) expire(now time.Time) {
	for a.heap.len() > 0 {
		top := a.heap.peek()
		if !now.After(top.at) {
			return
		}
		a.heap.pop()
		l, ok := a.leases[top.key]
		if !ok || l.ver != top.ver {
			continue // released or renewed since this entry was pushed
		}
		delete(a.leases, top.key)
		a.t.history.RemovePendingKey(top.key)
	}
}

// lease records one handed-out candidate: lease-map entry, expiry-heap
// entry (finite deadlines only), pending fantasy, and the duplicate
// counter.
func (a *AskTell) lease(c space.Config, deadline time.Time) {
	key := a.t.sp.Key(c)
	a.ver++
	a.leases[key] = Lease{Config: c.Clone(), Expires: deadline, ver: a.ver}
	if !deadline.IsZero() {
		a.heap.push(leaseEntry{at: deadline, key: key, ver: a.ver})
	}
	a.t.history.AddPending(c)
	if a.suggested[key] {
		a.dups++
	} else {
		a.suggested[key] = true
	}
}

// release drops a lease and its pending fantasy (no-op when the key is
// not leased). The heap entry is left behind for lazy deletion.
func (a *AskTell) release(key string) {
	if _, ok := a.leases[key]; !ok {
		return
	}
	delete(a.leases, key)
	a.t.history.RemovePendingKey(key)
}

// Ask leases up to k distinct, not-yet-evaluated, not-currently-leased
// configurations. During the initial phase candidates are uniform
// random draws; afterwards they are selected one at a time, each pick
// fantasized into the pending overlay (constant-liar) before the next
// selection, so the model steers every subsequent pick — in this batch
// and in concurrent Asks — away from in-flight work. ttl <= 0 leases
// forever. A short (or empty) result means the unevaluated pool net of
// live leases is smaller than k.
//
// With no outstanding leases and k = 1 the selection is bit-identical
// to SelectBatch(1): the fantasy is added only after the pick, and is
// removed when the result is told, so the serial ask/tell path matches
// the Tuner-driven loop exactly.
func (a *AskTell) Ask(k int, ttl time.Duration, now time.Time) ([]space.Config, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: Ask with k < 1")
	}
	a.expire(now)
	leased := func(c space.Config) bool {
		_, ok := a.leases[a.t.sp.Key(c)]
		return ok
	}
	deadline := time.Time{}
	if ttl > 0 {
		deadline = now.Add(ttl)
	}

	if a.InitialPhase() {
		picks, err := a.t.SelectInitial(k, leased)
		if err != nil {
			return nil, err
		}
		for _, c := range picks {
			a.lease(c, deadline)
		}
		return picks, nil
	}

	picks := make([]space.Config, 0, k)
	for len(picks) < k {
		batch, err := a.t.SelectBatchFiltered(1, leased)
		if err != nil {
			// Roll back this call's leases: candidates never handed out
			// must not stay fantasized or fenced off.
			for _, c := range picks {
				a.release(a.t.sp.Key(c))
			}
			return nil, err
		}
		if len(batch) == 0 {
			break // pool net of leases exhausted
		}
		c := batch[0]
		a.lease(c, deadline)
		picks = append(picks, c)
	}
	return picks, nil
}

// Renew extends the deadlines of currently leased configurations to
// now+ttl (ttl <= 0 makes them never expire), for workers whose
// evaluations outlive the original lease. It returns the number of
// leases renewed plus the configurations that are no longer leased —
// expired and possibly re-issued ("stolen"), or already evaluated —
// which the worker should treat as lost: its result may still be told
// (Tell folds unsolicited results), but the candidate is no longer
// reserved for it.
func (a *AskTell) Renew(configs []space.Config, ttl time.Duration, now time.Time) (renewed int, lost []space.Config) {
	a.expire(now)
	deadline := time.Time{}
	if ttl > 0 {
		deadline = now.Add(ttl)
	}
	for _, c := range configs {
		key := a.t.sp.Key(c)
		l, ok := a.leases[key]
		if !ok {
			lost = append(lost, c)
			continue
		}
		a.ver++
		l.Expires = deadline
		l.ver = a.ver
		a.leases[key] = l
		if !deadline.IsZero() {
			a.heap.push(leaseEntry{at: deadline, key: key, ver: a.ver})
		}
		renewed++
	}
	return renewed, lost
}

// Tell reports an evaluated configuration and releases its lease (if
// any). Duplicate reports of an already-evaluated configuration are
// idempotent: they release the lease and return added=false with no
// error, so retried deliveries from workers are harmless. The
// configuration need not have been leased — unsolicited results are
// folded in too. Structurally invalid configurations error without
// touching the history.
func (a *AskTell) Tell(c space.Config, value float64) (added bool, err error) {
	return a.TellObs(Observation{Config: c, Value: value})
}

// TellObs is Tell for a full observation (raw metrics and canonical
// objective vector included) — the wire path for multi-metric results.
// Releasing the lease drops its constant-liar fantasy, so the real
// observation replaces the fantasized one in the next fit.
func (a *AskTell) TellObs(obs Observation) (added bool, err error) {
	if err := a.t.sp.Check(obs.Config); err != nil {
		return false, err
	}
	key := a.t.sp.Key(obs.Config)
	if a.t.history.Contains(obs.Config) {
		a.release(key)
		return false, nil
	}
	if err := a.t.ObserveObs(obs); err != nil {
		return false, err
	}
	a.release(key)
	return true, nil
}

// leaseEntry is one deadline in the expiry heap. Entries are
// immutable; renewing or releasing a lease orphans its entry (version
// mismatch) rather than removing it.
type leaseEntry struct {
	at  time.Time
	key string
	ver uint64
}

// leaseHeap is a binary min-heap of lease deadlines with lazy
// deletion, replacing the per-call O(n) lease-map walk of expire.
type leaseHeap struct {
	e []leaseEntry
}

func (h *leaseHeap) len() int { return len(h.e) }

func (h *leaseHeap) peek() leaseEntry { return h.e[0] }

func (h *leaseHeap) push(x leaseEntry) {
	h.e = append(h.e, x)
	i := len(h.e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.e[i].at.Before(h.e[parent].at) {
			break
		}
		h.e[i], h.e[parent] = h.e[parent], h.e[i]
		i = parent
	}
}

func (h *leaseHeap) pop() leaseEntry {
	top := h.e[0]
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.e[last] = leaseEntry{} // let the key string go
	h.e = h.e[:last]
	i := 0
	for {
		child := 2*i + 1
		if child >= len(h.e) {
			break
		}
		if right := child + 1; right < len(h.e) && h.e[right].at.Before(h.e[child].at) {
			child = right
		}
		if !h.e[child].at.Before(h.e[i].at) {
			break
		}
		h.e[i], h.e[child] = h.e[child], h.e[i]
		i = child
	}
	return top
}
