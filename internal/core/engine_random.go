package core

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// The "random" engine is the paper's random-search baseline expressed
// as a Model/Acquirer pair: an indifferent model (every configuration
// scores 0) and an acquirer that picks uniformly at random from the
// unevaluated pool (or the space, when no pool is available). Running
// it through the shared Tuner loop means baselines get leasing,
// journaling, and ask/tell for free.

func init() {
	RegisterEngine(EngineSpec{
		Name: "random",
		Pool: PoolPreferred,
		New: func(sp *space.Space, opts Options, pool *Pool) (Model, Acquirer, error) {
			return uniformModel{sp: sp}, randomAcquirer{}, nil
		},
	})
}

// uniformModel believes nothing: all configurations score equally.
type uniformModel struct{ sp *space.Space }

// Fit is a no-op; the uniform model has no state.
func (uniformModel) Fit(*History) error { return nil }

// Observe is a no-op.
func (uniformModel) Observe(Observation) {}

// Score is constant: no configuration is preferred.
func (uniformModel) Score(space.Config) float64 { return 0 }

// ScoreBatch fills dst with the constant score.
func (uniformModel) ScoreBatch(b *space.Batch, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

// Sample draws uniformly from the space.
func (m uniformModel) Sample(r *stats.RNG) space.Config { return m.sp.Sample(r) }

// Importance is undefined for the uniform model.
func (uniformModel) Importance() []float64 { return nil }

// randomAcquirer picks unevaluated candidates uniformly at random.
type randomAcquirer struct{}

func (randomAcquirer) Propose(a *Acquisition, k int) ([]space.Config, error) {
	if a.Pool != nil {
		rem := a.Pool.Remaining()
		avail := make([]int, 0, len(rem))
		for _, idx := range rem {
			if a.skips(a.Pool.Candidate(idx)) {
				continue
			}
			avail = append(avail, idx)
		}
		if k > len(avail) {
			k = len(avail)
		}
		out := make([]space.Config, 0, k)
		for len(out) < k {
			pick := a.RNG.Intn(len(avail))
			out = append(out, a.Pool.Candidate(avail[pick]))
			avail[pick] = avail[len(avail)-1]
			avail = avail[:len(avail)-1]
		}
		return out, nil
	}
	const maxTries = 100000
	var out []space.Config
	seen := make(map[string]bool, k)
	for try := 0; try < maxTries && len(out) < k; try++ {
		c := a.Space.Sample(a.RNG)
		if a.History.Contains(c) || seen[a.Space.Key(c)] || a.skips(c) {
			continue
		}
		seen[a.Space.Key(c)] = true
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: random acquisition could not draw an unevaluated configuration")
	}
	return out, nil
}
