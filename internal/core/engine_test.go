package core

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

func engineTestSpace() *space.Space {
	return space.New(
		space.Discrete("a", "x", "y", "z"),
		space.DiscreteInts("b", 1, 2, 4, 8),
		space.DiscreteInts("c", 0, 1),
	)
}

func TestEngineRegistry(t *testing.T) {
	names := EngineNames()
	for _, want := range []string{"ranking", "proposal", "random"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in engine %q missing from registry %v", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("EngineNames not sorted: %v", names)
		}
	}
	if _, ok := LookupEngine("RANKING"); !ok {
		t.Fatal("LookupEngine is not case-insensitive")
	}
	if _, ok := LookupEngine("no-such-engine"); ok {
		t.Fatal("LookupEngine accepted an unknown name")
	}
}

func TestRegisterEngineRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering \"ranking\" did not panic")
		}
	}()
	RegisterEngine(EngineSpec{Name: "ranking", New: func(*space.Space, Options, *Pool) (Model, Acquirer, error) {
		return nil, nil, nil
	}})
}

func TestNewTunerUnknownEngine(t *testing.T) {
	sp := engineTestSpace()
	_, err := NewTuner(sp, func(space.Config) float64 { return 0 }, Options{Engine: "bogus"})
	if err == nil || !strings.Contains(err.Error(), `unknown engine "bogus"`) {
		t.Fatalf("err = %v, want unknown engine", err)
	}
	if err != nil && !strings.Contains(err.Error(), "ranking") {
		t.Fatalf("err %v does not list registered engines", err)
	}
}

// TestScoreBatchMatchesScore pins the bit-identical guarantee the
// ranking engine's golden parity rests on: the columnar sweep must
// accumulate per dimension in the same order as Score.
func TestScoreBatchMatchesScore(t *testing.T) {
	sp := engineTestSpace()
	r := stats.NewRNG(3)
	h := NewHistory(sp)
	for i := 0; i < 40; i++ {
		c := sp.Sample(r)
		if h.Contains(c) {
			continue
		}
		h.MustAdd(c, r.Float64())
	}
	s, err := BuildSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	configs := sp.Enumerate()
	batch, err := space.NewBatch(sp, configs)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, batch.Len())
	s.ScoreBatch(batch, dst)
	for i, c := range configs {
		if want := s.Score(c); dst[i] != want {
			t.Fatalf("row %d: ScoreBatch %v != Score %v", i, dst[i], want)
		}
	}

	// ScoreAll must agree for every worker count (chunk boundaries
	// change, per-row arithmetic must not).
	for _, workers := range []int{1, 2, 3, 7} {
		m := &TPEModel{s: s}
		got := ScoreAll(m, batch, workers)
		for i := range got {
			if got[i] != dst[i] {
				t.Fatalf("workers=%d row %d: ScoreAll %v != ScoreBatch %v", workers, i, got[i], dst[i])
			}
		}
	}
}

// TestEIFiniteOnUnderflow is the regression for the -Inf/NaN EI bug:
// far from every KDE kernel both densities underflow to zero mass, the
// Score becomes NaN (or ±Inf when only one side underflows), and the
// unclamped EI used to propagate that into the acquisition loop.
func TestEIFiniteOnUnderflow(t *testing.T) {
	sp := space.New(
		space.Continuous("x", 0, 1e12),
		space.Continuous("y", 0, 1e12),
	)
	h := NewHistory(sp)
	r := stats.NewRNG(1)
	// Two tight clusters near the origin: good mass near x≈0, bad
	// mass near x≈10, with a tiny fixed bandwidth so the tails die
	// within a few units.
	for i := 0; i < 30; i++ {
		x := r.Float64()
		y := r.Float64()
		v := x // small x is good
		h.MustAdd(space.Config{x, y + 10}, v)
	}
	s, err := BuildSurrogate(h, SurrogateConfig{Bandwidth: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	far := space.Config{1e11, 1e11}
	score := s.Score(far)
	if !math.IsNaN(score) && !math.IsInf(score, 0) {
		t.Fatalf("expected degenerate score far from all kernels, got %v (test setup no longer triggers underflow)", score)
	}
	ei := s.EI(far)
	if math.IsNaN(ei) || math.IsInf(ei, 0) {
		t.Fatalf("EI(degenerate score %v) = %v, want finite", score, ei)
	}
	if ei < 0 || ei > 1/s.alpha+1e-12 {
		t.Fatalf("EI = %v outside [0, 1/α=%v]", ei, 1/s.alpha)
	}

	// Mixed case: one dimension underflows to -Inf while the other is
	// fine — the clamp must keep EI at the zero-improvement end, not
	// produce NaN.
	nearBadOnly := space.Config{1e11, 10.2}
	if ei := s.EI(nearBadOnly); math.IsNaN(ei) || ei < 0 {
		t.Fatalf("EI(partial underflow) = %v", ei)
	}
}

// TestRandomEngineCoversPool checks the pool-backed random acquirer
// draws distinct unevaluated candidates until exhaustion.
func TestRandomEngineCoversPool(t *testing.T) {
	sp := engineTestSpace()
	n := sp.GridSize()
	tn, err := NewTuner(sp, func(space.Config) float64 { return 0 }, Options{
		Engine:         "random",
		InitialSamples: 2,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tn.EngineName() != "random" {
		t.Fatalf("EngineName = %q", tn.EngineName())
	}
	if _, err := tn.Run(n); err != nil {
		t.Fatal(err)
	}
	if tn.History().Len() != n {
		t.Fatalf("drew %d of %d configurations", tn.History().Len(), n)
	}
	seen := map[string]bool{}
	for i := 0; i < tn.History().Len(); i++ {
		k := sp.Describe(tn.History().At(i).Config)
		if seen[k] {
			t.Fatalf("duplicate draw %s", k)
		}
		seen[k] = true
	}
	// One more step must fail: nothing left.
	if _, err := tn.Step(); err == nil {
		t.Fatal("Step on an exhausted pool succeeded")
	}
}

// TestGeistNameFailsWithoutRegistration: the geist engine lives in
// internal/geist and registers via its init; core alone must reject
// the name rather than silently substituting another engine.
func TestCoreDoesNotKnowGeistImplicitly(t *testing.T) {
	// This test documents layering, not behavior we rely on: if some
	// core-internal test gains a geist import, the registry will know
	// the name and this becomes vacuous — that's fine.
	if _, ok := LookupEngine("geist"); ok {
		t.Skip("geist registered by another import in this test binary")
	}
	sp := engineTestSpace()
	_, err := NewTuner(sp, func(space.Config) float64 { return 0 }, Options{Engine: "geist"})
	if err == nil {
		t.Fatal("NewTuner accepted an unregistered engine name")
	}
}

// TestPoolLifecycle exercises the swap-removal bookkeeping directly.
func TestPoolLifecycle(t *testing.T) {
	sp := engineTestSpace()
	configs := sp.Enumerate()
	p, err := NewPool(sp, configs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != len(configs) || p.RemainingCount() != len(configs) {
		t.Fatalf("size %d remaining %d, want %d", p.Size(), p.RemainingCount(), len(configs))
	}
	if got := p.IndexOf(configs[5]); got != 5 {
		t.Fatalf("IndexOf = %d, want 5", got)
	}
	p.MarkEvaluated(configs[5])
	if p.RemainingCount() != len(configs)-1 {
		t.Fatalf("remaining %d after one evaluation", p.RemainingCount())
	}
	for _, idx := range p.Remaining() {
		if idx == 5 {
			t.Fatal("evaluated candidate still in remaining set")
		}
	}
	// IndexOf still resolves evaluated candidates (history membership
	// checks rely on it).
	if got := p.IndexOf(configs[5]); got != 5 {
		t.Fatalf("IndexOf after MarkEvaluated = %d, want 5", got)
	}
	if _, err := NewPool(sp, []space.Config{}); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewPool(sp, []space.Config{configs[0], configs[0]}); err == nil {
		t.Fatal("duplicate pool accepted")
	}
	b, err := p.Batch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(configs) {
		t.Fatalf("pool batch has %d rows", b.Len())
	}
	sub := b.Slice(4, 9)
	if sub.Offset() != 4 || sub.Len() != 5 {
		t.Fatalf("slice offset %d len %d", sub.Offset(), sub.Len())
	}
}
