package core

import (
	"fmt"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// surrogateBuilder maintains the surrogate's sufficient statistics
// incrementally across an append-only history, so refitting after a
// Tell touches only the new observations (plus any whose good/bad
// membership flips when the α-quantile threshold moves) instead of
// re-histogramming the entire history.
//
// Bit-identity with a cold BuildSurrogate is a hard requirement (the
// golden selection sequences pin it), and falls out of three facts:
//
//   - the threshold: stats.Quantile sorts a copy of the values and
//     interpolates; the builder maintains the same sorted multiset by
//     insertion and applies stats.QuantileSorted — identical input,
//     identical interpolation.
//   - discrete counts: category counts are integer-valued float64s,
//     and integer adds/subtracts below 2^53 are exact, so counts
//     maintained by ±1 updates equal counts recomputed from scratch;
//     CategoricalFromCounts then consumes them in index order either
//     way.
//   - continuous points: KDE point sets are gathered by scanning the
//     history in evaluation order and filtering on membership —
//     exactly the order the cold path's partition loop produces.
//
// Both the cold path (BuildSurrogate) and the incremental path
// (TPEModel.Fit) assemble the final densities through the same
// assemble/density code below, so they cannot drift apart.
type surrogateBuilder struct {
	sp  *space.Space
	cfg SurrogateConfig // defaulted and validated

	n        int       // observations folded in so far
	sorted   []float64 // all observed values, ascending
	goodMask []bool    // per observation: in the good partition?
	nGood    int
	nBad     int

	// Per-dimension category counts for discrete parameters (nil
	// entries for continuous dimensions). Values are exact integers.
	goodCounts [][]float64
	badCounts  [][]float64
}

// newSurrogateBuilder validates the configuration (including prior
// compatibility) and prepares empty statistics.
func newSurrogateBuilder(sp *space.Space, cfg SurrogateConfig) (*surrogateBuilder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := checkPriorCompatible(sp, cfg.Prior); err != nil {
		return nil, err
	}
	b := &surrogateBuilder{
		sp:         sp,
		cfg:        cfg,
		goodCounts: make([][]float64, sp.NumParams()),
		badCounts:  make([][]float64, sp.NumParams()),
	}
	for i := 0; i < sp.NumParams(); i++ {
		if p := sp.Param(i); p.Kind == space.DiscreteKind {
			b.goodCounts[i] = make([]float64, p.Cardinality())
			b.badCounts[i] = make([]float64, p.Cardinality())
		}
	}
	return b, nil
}

// checkPriorCompatible verifies a transfer prior's space matches the
// target space parameter by parameter.
func checkPriorCompatible(sp *space.Space, prior *Prior) error {
	if prior == nil || prior.sp == sp {
		return nil
	}
	if prior.sp.NumParams() != sp.NumParams() {
		return fmt.Errorf("core: prior space has %d parameters, target has %d",
			prior.sp.NumParams(), sp.NumParams())
	}
	for i := 0; i < sp.NumParams(); i++ {
		a, b := prior.sp.Param(i), sp.Param(i)
		if a.Name != b.Name || a.Kind != b.Kind || a.Cardinality() != b.Cardinality() {
			return fmt.Errorf("core: prior parameter %d (%s) incompatible with target (%s)",
				i, a.Name, b.Name)
		}
	}
	return nil
}

// Fold folds observations [b.n, h.Len()) into the statistics and
// assembles a fresh surrogate. The history must be the same
// append-only history across calls; a caller seeing a different
// History object must start a new builder.
func (b *surrogateBuilder) Fold(h *History) (*Surrogate, error) {
	if h.Space() != b.sp {
		return nil, fmt.Errorf("core: surrogate builder fed a history over a different space")
	}
	if h.Len() == 0 {
		return nil, fmt.Errorf("core: BuildSurrogate on empty history")
	}
	obs := h.Observations()
	if len(obs) < b.n {
		return nil, fmt.Errorf("core: history shrank from %d to %d observations", b.n, len(obs))
	}
	old := b.n
	for _, o := range obs[old:] {
		b.insertValue(o.Value)
	}
	threshold := stats.QuantileSorted(b.sorted, b.cfg.Quantile)

	// A moved threshold can flip the membership of existing
	// observations (good↔bad); adjust their counts before folding in
	// the new ones.
	for i := 0; i < old; i++ {
		good := obs[i].Value <= threshold
		if good == b.goodMask[i] {
			continue
		}
		b.count(obs[i].Config, b.goodMask[i], -1)
		b.count(obs[i].Config, good, +1)
		if good {
			b.nGood++
			b.nBad--
		} else {
			b.nGood--
			b.nBad++
		}
		b.goodMask[i] = good
	}
	for _, o := range obs[old:] {
		good := o.Value <= threshold
		b.goodMask = append(b.goodMask, good)
		b.count(o.Config, good, +1)
		if good {
			b.nGood++
		} else {
			b.nBad++
		}
	}
	b.n = len(obs)
	return b.assemble(h, threshold)
}

// insertValue adds v to the sorted multiset of observed values.
func (b *surrogateBuilder) insertValue(v float64) {
	i := sort.SearchFloat64s(b.sorted, v)
	b.sorted = append(b.sorted, 0)
	copy(b.sorted[i+1:], b.sorted[i:])
	b.sorted[i] = v
}

// count applies delta (±1) to every discrete dimension's category
// count in the given partition.
func (b *surrogateBuilder) count(c space.Config, good bool, delta float64) {
	counts := b.badCounts
	if good {
		counts = b.goodCounts
	}
	for d, cc := range counts {
		if cc != nil {
			cc[int(c[d])] += delta
		}
	}
}

// assemble builds the Surrogate from the current statistics.
func (b *surrogateBuilder) assemble(h *History, threshold float64) (*Surrogate, error) {
	sp, cfg := b.sp, b.cfg
	s := &Surrogate{
		sp:        sp,
		threshold: threshold,
		nGood:     b.nGood,
		nBad:      b.nBad,
		alpha:     cfg.Quantile,
	}
	s.good = make([]density, sp.NumParams())
	s.bad = make([]density, sp.NumParams())
	for i := 0; i < sp.NumParams(); i++ {
		var priorGood, priorBad density
		if cfg.Prior != nil {
			priorGood, priorBad = cfg.Prior.good[i], cfg.Prior.bad[i]
		}
		s.good[i] = b.density(h, i, true, priorGood)
		s.bad[i] = b.density(h, i, false, priorBad)
	}
	return s, nil
}

// density estimates one parameter's density for one partition from
// the maintained statistics, optionally mixing in a source-domain
// prior — the shared construction path for cold and incremental fits.
func (b *surrogateBuilder) density(h *History, dim int, good bool, prior density) density {
	p := b.sp.Param(dim)
	cfg := b.cfg
	n := b.nBad
	if good {
		n = b.nGood
	}
	switch p.Kind {
	case space.DiscreteKind:
		var cat *stats.Categorical
		if n == 0 {
			cat = stats.NewCategorical(p.Cardinality())
		} else {
			counts := b.badCounts[dim]
			if good {
				counts = b.goodCounts[dim]
			}
			cat = stats.CategoricalFromCounts(counts, cfg.Smoothing)
		}
		if prior != nil && cfg.PriorWeight > 0 {
			cat = stats.Mix(prior.(discreteDensity).cat, cfg.PriorWeight, cat, 1)
		}
		return newDiscreteDensity(cat)
	case space.ContinuousKind:
		var kde *stats.KDE
		if n == 0 {
			kde = stats.UniformKDE(p.Lo, p.Hi)
		} else {
			points := make([]float64, 0, n)
			for i, o := range h.Observations()[:len(b.goodMask)] {
				if b.goodMask[i] == good {
					points = append(points, o.Config[dim])
				}
			}
			kde = stats.NewKDE(points, cfg.Bandwidth)
			kde.SetBounds(p.Lo, p.Hi)
		}
		if prior != nil && cfg.PriorWeight > 0 {
			kde = stats.MergeKDE(prior.(continuousDensity).kde, cfg.PriorWeight, kde, 1)
			kde.SetBounds(p.Lo, p.Hi)
		}
		return continuousDensity{kde: kde, lo: p.Lo, hi: p.Hi, bins: cfg.Bins}
	default:
		panic(fmt.Sprintf("core: unknown parameter kind %v", p.Kind))
	}
}
