package core

import (
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestParseLiarPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want LiarPolicy
		ok   bool
	}{
		{"", LiarMean, true},
		{"mean", LiarMean, true},
		{"min", LiarMin, true},
		{"max", LiarMax, true},
		{"MIN", LiarMin, true}, // case-insensitive, like fsync policies
		{"median", 0, false},
	}
	for _, c := range cases {
		got, err := ParseLiarPolicy(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseLiarPolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseLiarPolicy(%q) accepted an unknown policy", c.in)
		}
	}
}

func TestPendingHashOrderIndependent(t *testing.T) {
	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3),
		space.DiscreteInts("y", 0, 1, 2, 3),
	)
	a, b, c := space.Config{0, 1}, space.Config{2, 3}, space.Config{1, 1}

	h1 := NewHistory(sp)
	h1.AddPending(a)
	h1.AddPending(b)
	h1.AddPending(c)

	h2 := NewHistory(sp)
	h2.AddPending(c)
	h2.AddPending(a)
	h2.AddPending(b)

	if h1.PendingHash() != h2.PendingHash() {
		t.Fatal("pending hash depends on insertion order")
	}
	// Adding an already-pending config is a no-op.
	before := h1.PendingHash()
	h1.AddPending(a)
	if h1.PendingHash() != before || h1.PendingLen() != 3 {
		t.Fatal("re-adding a pending config changed the overlay")
	}
	// Removing everything restores the empty hash (0), so the
	// no-pending cache key degenerates to the generation alone.
	h1.RemovePending(b)
	h1.RemovePending(a)
	h1.RemovePending(c)
	if h1.PendingHash() != 0 || h1.PendingLen() != 0 {
		t.Fatalf("emptied overlay: hash=%d len=%d, want 0, 0", h1.PendingHash(), h1.PendingLen())
	}
}

func TestFantasizedLiarValues(t *testing.T) {
	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3),
		space.DiscreteInts("y", 0, 1, 2, 3),
	)
	obs := []Observation{
		{Config: space.Config{0, 0}, Value: 4},
		{Config: space.Config{1, 1}, Value: 1},
		{Config: space.Config{2, 2}, Value: 7},
	}
	for _, tc := range []struct {
		policy LiarPolicy
		want   float64
	}{
		{LiarMin, 1},
		{LiarMean, 4},
		{LiarMax, 7},
	} {
		h := NewHistory(sp)
		h.SetLiar(tc.policy)
		for _, o := range obs {
			if err := h.AddObs(o); err != nil {
				t.Fatal(err)
			}
		}
		// No pending: the fantasized view IS the history.
		if h.Fantasized() != h {
			t.Fatalf("%v: Fantasized with empty overlay is not the history itself", tc.policy)
		}
		h.AddPending(space.Config{3, 3})
		f := h.Fantasized()
		if f == h {
			t.Fatalf("%v: Fantasized with pending returned the bare history", tc.policy)
		}
		if f.Len() != h.Len()+1 {
			t.Fatalf("%v: fantasized length %d, want %d", tc.policy, f.Len(), h.Len()+1)
		}
		if got := f.At(f.Len() - 1).Value; got != tc.want {
			t.Errorf("%v: fantasy value %v, want %v", tc.policy, got, tc.want)
		}
		// The real history is untouched and its best is unchanged.
		if h.Len() != 3 || h.Best().Value != 1 {
			t.Fatalf("%v: fantasization mutated the real history", tc.policy)
		}
		// Same (generation, overlay) → the cached view is reused.
		if h.Fantasized() != f {
			t.Errorf("%v: repeated Fantasized rebuilt the view", tc.policy)
		}
		// A new observation invalidates the cache.
		if err := h.AddObs(Observation{Config: space.Config{0, 1}, Value: 2}); err != nil {
			t.Fatal(err)
		}
		if h.Fantasized() == f {
			t.Errorf("%v: Fantasized served a stale view across a generation bump", tc.policy)
		}
	}
}

func TestAskTellHeapExpiry(t *testing.T) {
	at := newAskTellTuner(t, 4)
	now := time.Now()
	// Stagger three leases at 1s, 2s, 3s.
	var picks []space.Config
	for i := 1; i <= 3; i++ {
		p, err := at.Ask(1, time.Duration(i)*time.Second, now)
		if err != nil {
			t.Fatal(err)
		}
		picks = append(picks, p...)
	}
	if got := at.Leases(now); got != 3 {
		t.Fatalf("Leases = %d, want 3", got)
	}
	if got := at.Tuner().History().PendingLen(); got != 3 {
		t.Fatalf("PendingLen = %d, want 3 (one fantasy per live lease)", got)
	}
	// Expiry is incremental: each second drops exactly one.
	for i := 1; i <= 3; i++ {
		later := now.Add(time.Duration(i)*time.Second + 100*time.Millisecond)
		if got := at.Leases(later); got != 3-i {
			t.Fatalf("Leases after %ds = %d, want %d", i, got, 3-i)
		}
		if got := at.Tuner().History().PendingLen(); got != 3-i {
			t.Fatalf("PendingLen after %ds = %d, want %d (expiry must drop the fantasy)", i, got, 3-i)
		}
	}
	// Expired candidates return to the pool; re-issuing them is the
	// only way the duplicate counter advances.
	if at.DuplicateSuggestions() != 0 {
		t.Fatalf("DuplicateSuggestions = %d before any re-issue", at.DuplicateSuggestions())
	}
	later := now.Add(time.Hour)
	re, err := at.Ask(16, 0, later)
	if err != nil {
		t.Fatal(err)
	}
	if len(re) != 16 {
		t.Fatalf("re-leased %d, want the whole 16-config space", len(re))
	}
	if got := at.DuplicateSuggestions(); got != 3 {
		t.Fatalf("DuplicateSuggestions = %d, want 3 (the expired leases)", got)
	}
}

func TestAskTellRenew(t *testing.T) {
	at := newAskTellTuner(t, 4)
	now := time.Now()
	picks, err := at.Ask(2, time.Second, now)
	if err != nil {
		t.Fatal(err)
	}
	// Renew the first pick past the original deadline; let the second
	// lapse. A config never leased is reported lost immediately.
	foreign := space.Config{3, 3}
	if at.Tuner().History().Space().Key(picks[0]) == at.Tuner().History().Space().Key(foreign) ||
		at.Tuner().History().Space().Key(picks[1]) == at.Tuner().History().Space().Key(foreign) {
		foreign = space.Config{2, 1}
	}
	renewed, lost := at.Renew([]space.Config{picks[0], foreign}, time.Minute, now)
	if renewed != 1 || len(lost) != 1 {
		t.Fatalf("Renew = %d renewed, %d lost; want 1, 1", renewed, len(lost))
	}
	later := now.Add(2 * time.Second)
	if got := at.Leases(later); got != 1 {
		t.Fatalf("Leases after original deadline = %d, want only the renewed one", got)
	}
	// The renewed lease survives its orphaned heap entry (lazy
	// deletion): renewing again after the old deadline still finds it.
	renewed, lost = at.Renew(picks[:1], time.Minute, later)
	if renewed != 1 || len(lost) != 0 {
		t.Fatalf("second Renew = %d renewed, %d lost; want 1, 0", renewed, len(lost))
	}
	// The lapsed pick is lost once expired.
	_, lost = at.Renew(picks[1:2], time.Minute, later)
	if len(lost) != 1 {
		t.Fatalf("renewing an expired lease reported %d lost, want 1", len(lost))
	}
}

// TestAskTellSerialMatchesSelectBatch pins the serial bit-identity
// guarantee: with one lease at a time and every result told before the
// next ask, Ask(1)/Tell reproduces exactly the Tuner-driven
// SelectInitial/SelectBatch sequence — the pending overlay is empty at
// every fit, so fantasization never engages and the no-pending path
// stays bit-identical to the overlay-free tuner.
func TestAskTellSerialMatchesSelectBatch(t *testing.T) {
	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3),
		space.DiscreteInts("y", 0, 1, 2, 3),
		space.DiscreteInts("z", 0, 1, 2),
	)
	value := func(c space.Config) float64 {
		return (c[0]-1)*(c[0]-1) + (c[1]-2)*(c[1]-2) + 0.5*c[2]
	}
	mk := func() *Tuner {
		tn, err := NewTuner(sp, func(space.Config) float64 {
			panic("driven externally")
		}, Options{InitialSamples: 6, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}

	// Reference: the plain Tuner loop, no lease bookkeeping at all.
	ref := mk()
	var want []string
	for ref.Evaluations() < 20 {
		var picks []space.Config
		var err error
		if ref.Evaluations() < ref.InitialSamples() {
			picks, err = ref.SelectInitial(1, nil)
		} else {
			picks, err = ref.SelectBatch(1)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) == 0 {
			break
		}
		want = append(want, sp.Key(picks[0]))
		if err := ref.Observe(picks[0], value(picks[0])); err != nil {
			t.Fatal(err)
		}
	}

	// Same seed, driven through pending-aware Ask/Tell, serially.
	at := NewAskTell(mk())
	now := time.Now()
	var got []string
	for at.Tuner().Evaluations() < 20 {
		picks, err := at.Ask(1, time.Minute, now)
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) == 0 {
			break
		}
		got = append(got, sp.Key(picks[0]))
		if _, err := at.Tell(picks[0], value(picks[0])); err != nil {
			t.Fatal(err)
		}
	}

	if len(got) != len(want) {
		t.Fatalf("sequence lengths differ: ask/tell %d vs tuner %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick %d diverged: ask/tell %s vs tuner %s", i, got[i], want[i])
		}
	}
}

// TestAskTellBatchFantasizesPicks checks the tentpole's core behavior:
// in the model phase a single Ask(k) selects one candidate at a time
// with each pick fantasized before the next, so the batch is distinct
// and every pick carries a pending fantasy until its result arrives.
func TestAskTellBatchFantasizesPicks(t *testing.T) {
	at := newAskTellTuner(t, 4)
	now := time.Now()
	for at.InitialPhase() {
		picks, err := at.Ask(1, time.Minute, now)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := at.Tell(picks[0], synthValue(picks[0])); err != nil {
			t.Fatal(err)
		}
	}
	picks, err := at.Ask(4, time.Minute, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 4 {
		t.Fatalf("model-phase Ask(4) returned %d picks", len(picks))
	}
	sp := at.Tuner().History().Space()
	seen := make(map[string]bool)
	for _, c := range picks {
		key := sp.Key(c)
		if seen[key] {
			t.Fatalf("batch contains duplicate %s", sp.Describe(c))
		}
		seen[key] = true
	}
	if got := at.Tuner().History().PendingLen(); got != 4 {
		t.Fatalf("PendingLen = %d after Ask(4), want 4", got)
	}
	// Telling one result releases exactly its fantasy.
	if _, err := at.Tell(picks[0], synthValue(picks[0])); err != nil {
		t.Fatal(err)
	}
	if got := at.Tuner().History().PendingLen(); got != 3 {
		t.Fatalf("PendingLen = %d after one Tell, want 3", got)
	}
}
