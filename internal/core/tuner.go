package core

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Objective evaluates a configuration's true performance by running
// the full application (paper: f(x)). It is assumed expensive.
type Objective func(space.Config) float64

// Strategy selects how the next candidate is chosen from the
// surrogate (paper §III-D). It predates the named-engine registry;
// Options.Engine supersedes it and accepts any registered engine,
// with Strategy kept as the zero-config spelling of the two TPE
// engines.
type Strategy int

const (
	// Ranking enumerates an exhaustive candidate set, scores every
	// not-yet-evaluated configuration, and picks the argmax. The right
	// choice for the discrete, finite spaces of HPC applications; also
	// guarantees no duplicate selections.
	Ranking Strategy = iota
	// Proposal samples candidates from the good density pg(x) and
	// picks the best-scoring one — the only viable option for
	// continuous spaces.
	Proposal
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Ranking:
		return "ranking"
	case Proposal:
		return "proposal"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a Tuner. The zero value plus a Seed reproduces
// the paper's setup: 20 initial samples, α = 0.20, Ranking on finite
// spaces and Proposal otherwise.
type Options struct {
	// InitialSamples seeds H_0 with uniformly random configurations
	// (paper §III-C step 1; 20 in the paper's experiments).
	InitialSamples int
	// Surrogate carries the density hyperparameters (α, smoothing,
	// bandwidth, prior).
	Surrogate SurrogateConfig
	// Engine names the registered engine driving selection ("ranking",
	// "proposal", "random", "geist", ...; see RegisterEngine). Empty
	// falls back to Strategy.
	Engine string
	// EngineConfig carries engine-specific configuration to the
	// engine's factory (e.g. geist.EngineConfig); nil uses the
	// engine's defaults.
	EngineConfig any
	// Strategy picks Ranking or Proposal when Engine is empty. Ignored
	// (forced to Proposal) when the space has continuous parameters
	// and no candidate set is given.
	Strategy Strategy
	// ProposalCandidates is the number of pg-samples scored per
	// iteration under the Proposal strategy.
	ProposalCandidates int
	// Candidates optionally fixes the candidate pool for pool-backed
	// engines. When nil, the space is enumerated (requires a fully
	// discrete space) — unless the grid exceeds DefaultEnumerateLimit,
	// in which case the large-space mode below takes over.
	Candidates []space.Config
	// PoolCap bounds the sampled candidate pool built for pool-backed
	// engines on spaces too large to enumerate (> DefaultEnumerateLimit
	// grid points): 0 means DefaultPoolCap, > 0 caps the pool at that
	// many candidates, and < 0 disables large-space mode entirely, so
	// asking for a pool-backed engine on an oversized space is a clean
	// error. Spaces small enough to enumerate are unaffected.
	PoolCap int
	// CandidateSamples is the number of good-density draws the
	// pool-free "sampling" engine scores per acquisition; 0 means
	// DefaultCandidateSamples.
	CandidateSamples int
	// Groups partitions the parameter space for the "grouped" engine:
	// each inner slice names the parameters of one group (see
	// ParseGroups for the flag syntax). Parameters named nowhere become
	// singleton groups; unknown or repeated names are a construction
	// error. Nil lets the engine auto-propose groups from the fitted
	// surrogate's importance/interaction structure at the first
	// model-guided fit. Engines other than "grouped" ignore it.
	Groups [][]string
	// Liar names the constant-liar policy ("min", "mean", "max"; empty
	// = mean) assigning fantasy values to pending observations when the
	// ask path runs with outstanding leases (see LiarPolicy). It only
	// affects pending-aware batch asks; the serial no-pending path is
	// policy-independent.
	Liar string
	// VectorObjective, when non-nil, computes the canonical
	// (all-minimize) objective vector attached to every observation
	// (Observation.Objectives) for multi-objective engines such as
	// "motpe". The scalar Objective still supplies Value, which keeps
	// driving Best, stall detection, and scalar engines.
	VectorObjective func(space.Config) []float64
	// Seed drives all pseudo-randomness; runs are reproducible.
	Seed uint64
	// OnStep, when non-nil, observes every evaluation (including the
	// initial samples) in order.
	OnStep func(iteration int, obs Observation)
	// Parallelism bounds the workers used for candidate scoring;
	// 0 means GOMAXPROCS.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.InitialSamples == 0 {
		o.InitialSamples = 20
	}
	if o.ProposalCandidates == 0 {
		o.ProposalCandidates = 100
	}
	if o.CandidateSamples == 0 {
		o.CandidateSamples = DefaultCandidateSamples
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	o.Surrogate = o.Surrogate.withDefaults()
	return o
}

// Tuner runs HiPerBOt's iterative loop (paper §III-C): seed the
// history with random samples, then repeatedly fit the engine's
// model, acquire the most promising candidates, evaluate them, and
// fold the observations back in. The model and acquisition rule are
// pluggable (see Model, Acquirer, RegisterEngine); the loop is not.
type Tuner struct {
	sp      *space.Space
	obj     Objective
	opts    Options
	rng     *stats.RNG
	history *History

	pool      *Pool        // nil for pool-less engines
	sampled   *SampledPool // non-nil when pool is a capped sample of the grid
	poolBound bool         // engine bound pool state at construction (no refresh)
	engine    string
	model     Model
	acquirer  Acquirer
	strategy  Strategy
	iter      int

	acq     Acquisition // reused per-acquisition view (no per-Ask alloc)
	scratch Scratch     // reusable buffers + generation-keyed caches
}

// NewTuner validates the options and prepares a tuner. The objective
// is not called yet; evaluation starts with Run or Step.
func NewTuner(sp *space.Space, obj Objective, opts Options) (*Tuner, error) {
	opts = opts.withDefaults()
	if obj == nil {
		return nil, fmt.Errorf("core: nil objective")
	}
	if opts.InitialSamples < 2 {
		return nil, fmt.Errorf("core: need at least 2 initial samples, got %d", opts.InitialSamples)
	}
	if err := opts.Surrogate.validate(); err != nil {
		return nil, err
	}
	liar, err := ParseLiarPolicy(opts.Liar)
	if err != nil {
		return nil, err
	}
	name := strings.ToLower(opts.Engine)
	defaulted := name == ""
	if defaulted {
		name = opts.Strategy.String()
	}
	if name == Ranking.String() && opts.Candidates == nil && !sp.AllDiscrete() {
		// Ranking needs a finite candidate set; fall back to Proposal.
		name = Proposal.String()
	}
	// Large-space mode: a discrete grid past the enumerate limit is
	// never materialized. The default TPE choice becomes the pool-free
	// "sampling" engine; explicitly requested pool-backed engines get a
	// capped SampledPool below.
	largeGrid := opts.Candidates == nil && sp.AllDiscrete() && gridTooLarge(sp)
	if largeGrid && defaulted && name == Ranking.String() && opts.PoolCap >= 0 {
		name = "sampling"
	}
	spec, ok := LookupEngine(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown engine %q (registered: %s)",
			name, strings.Join(EngineNames(), ", "))
	}
	t := &Tuner{
		sp:        sp,
		obj:       obj,
		opts:      opts,
		rng:       stats.NewRNG(opts.Seed),
		history:   NewHistory(sp),
		engine:    name,
		poolBound: spec.PoolBound,
	}
	t.history.SetLiar(liar)
	buildPool := spec.Pool == PoolRequired ||
		(spec.Pool == PoolPreferred && (opts.Candidates != nil || (sp.AllDiscrete() && !largeGrid)))
	if buildPool {
		cands := opts.Candidates
		switch {
		case cands == nil && !sp.AllDiscrete():
			return nil, fmt.Errorf("core: engine %q needs a finite candidate set: set Options.Candidates or use a fully discrete space", name)
		case cands == nil && largeGrid:
			// The pool RNG draws happen before any initial sample, so a
			// journal replay that reconstructs the tuner reproduces the
			// exact pool and therefore the exact selection sequence.
			if opts.PoolCap < 0 {
				return nil, fmt.Errorf("core: engine %q needs a candidate pool but the grid has %s points (enumerate limit %d): raise Options.PoolCap to sample one, or pass Options.Candidates",
					name, gridSizeString(sp), DefaultEnumerateLimit)
			}
			sampled, err := NewSampledPool(sp, opts.PoolCap, t.rng)
			if err != nil {
				return nil, err
			}
			t.sampled = sampled
			t.pool = sampled.Pool()
		case cands == nil:
			cands = sp.Enumerate()
			fallthrough
		default:
			pool, err := NewPool(sp, cands)
			if err != nil {
				return nil, err
			}
			t.pool = pool
		}
	}
	model, acquirer, err := spec.New(sp, opts, t.pool)
	if err != nil {
		return nil, err
	}
	t.model = model
	t.acquirer = acquirer
	// Legacy strategy view: the two TPE engines report themselves;
	// other engines are classified by whether they select from a pool.
	switch {
	case name == Proposal.String():
		t.strategy = Proposal
	case name == Ranking.String() || t.pool != nil:
		t.strategy = Ranking
	default:
		t.strategy = Proposal
	}
	return t, nil
}

// History exposes the observation history.
func (t *Tuner) History() *History { return t.history }

// Model returns the engine's model, e.g. for rendering marginals
// (Marginaler) or inspecting the fitted surrogate (*TPEModel).
func (t *Tuner) Model() Model { return t.model }

// EngineName reports which registered engine drives selection.
func (t *Tuner) EngineName() string { return t.engine }

// StrategyInUse reports the effective selection strategy (the legacy
// two-valued view of EngineName).
func (t *Tuner) StrategyInUse() Strategy { return t.strategy }

// Importance fits the engine's model on the current history and
// returns its per-parameter importance scores. It returns nil scores
// (no error) for models that do not define importance, and an error
// when the history is empty or the fit fails. The fit is generation-
// cached, so calling this between evaluations costs nothing beyond
// the first call; the returned slice may be shared with the model's
// cache and must not be mutated.
func (t *Tuner) Importance() ([]float64, error) {
	if t.history.Len() == 0 {
		return nil, fmt.Errorf("core: Importance before any evaluation")
	}
	if err := t.model.Fit(t.history); err != nil {
		return nil, err
	}
	return t.model.Importance(), nil
}

// Evaluations returns the number of objective evaluations so far.
func (t *Tuner) Evaluations() int { return t.history.Len() }

// InitialSamples returns the size of the initial random-sampling
// phase (Options.InitialSamples after defaulting).
func (t *Tuner) InitialSamples() int { return t.opts.InitialSamples }

// Best returns the best observation so far; panics before any
// evaluation.
func (t *Tuner) Best() Observation { return t.history.Best() }

// acquisition assembles the per-call view handed to the Acquirer,
// reusing one Acquisition struct and the tuner's scratch buffers so
// the steady-state path allocates nothing.
func (t *Tuner) acquisition() *Acquisition {
	t.acq = Acquisition{
		Space:              t.sp,
		Model:              t.model,
		History:            t.history,
		Pool:               t.pool,
		RNG:                t.rng,
		Parallelism:        t.opts.Parallelism,
		ProposalCandidates: t.opts.ProposalCandidates,
		CandidateSamples:   t.opts.CandidateSamples,
		Scratch:            &t.scratch,
	}
	return &t.acq
}

// Step performs exactly one objective evaluation: one of the initial
// random samples while H is smaller than InitialSamples, afterwards
// one model-guided selection. It returns the new observation.
func (t *Tuner) Step() (Observation, error) {
	var c space.Config
	switch {
	case t.history.Len() < t.opts.InitialSamples:
		var err error
		c, err = t.sampleInitial()
		if err != nil {
			return Observation{}, err
		}
	default:
		if err := t.model.Fit(t.history); err != nil {
			return Observation{}, err
		}
		picks, err := t.acquirer.Propose(t.acquisition(), 1)
		if err != nil {
			return Observation{}, err
		}
		if len(picks) == 0 {
			return Observation{}, fmt.Errorf("core: no unevaluated candidates remain")
		}
		c = picks[0]
	}
	obs := Observation{Config: c, Value: t.obj(c)}
	if t.opts.VectorObjective != nil {
		obs.Objectives = t.opts.VectorObjective(c)
	}
	if err := t.history.AddObs(obs); err != nil {
		return Observation{}, err
	}
	t.markEvaluated(c)
	t.model.Observe(obs)
	if t.opts.OnStep != nil {
		t.opts.OnStep(t.iter, obs)
	}
	t.iter++
	return obs, nil
}

// Run performs objective evaluations until the history holds budget
// observations (initial samples included) and returns the best.
func (t *Tuner) Run(budget int) (Observation, error) {
	if budget < t.opts.InitialSamples {
		return Observation{}, fmt.Errorf("core: budget %d smaller than %d initial samples",
			budget, t.opts.InitialSamples)
	}
	if t.pool != nil && budget > t.pool.Size() {
		return Observation{}, fmt.Errorf("core: budget %d exceeds the %d available configurations",
			budget, t.pool.Size())
	}
	for t.history.Len() < budget {
		if _, err := t.Step(); err != nil {
			return Observation{}, err
		}
	}
	return t.history.Best(), nil
}

// RunUntilStall evaluates until the best value has not improved by
// more than tol (relative) for stallLimit consecutive model-guided
// steps, or until maxBudget evaluations — the paper's alternative
// termination criterion ("if the score of the new samples do not
// improve as iterations progress").
func (t *Tuner) RunUntilStall(maxBudget, stallLimit int, tol float64) (Observation, error) {
	if stallLimit < 1 {
		return Observation{}, fmt.Errorf("core: stallLimit must be >= 1")
	}
	stall := 0
	bestSoFar := math.Inf(1)
	for t.history.Len() < maxBudget {
		if t.pool != nil && t.pool.RemainingCount() == 0 {
			break
		}
		obs, err := t.Step()
		if err != nil {
			return Observation{}, err
		}
		if t.history.Len() <= t.opts.InitialSamples {
			bestSoFar = t.history.Best().Value
			continue
		}
		if obs.Value < bestSoFar*(1-tol) {
			bestSoFar = obs.Value
			stall = 0
		} else {
			stall++
			if stall >= stallLimit {
				break
			}
		}
	}
	return t.history.Best(), nil
}

// sampleInitial draws a uniformly random configuration that has not
// been evaluated yet.
func (t *Tuner) sampleInitial() (space.Config, error) {
	if t.pool != nil {
		if t.pool.RemainingCount() == 0 {
			return nil, fmt.Errorf("core: candidate pool exhausted during initialization")
		}
		rem := t.pool.Remaining()
		pick := t.rng.Intn(len(rem))
		return t.pool.Candidate(rem[pick]), nil
	}
	const maxTries = 100000
	for try := 0; try < maxTries; try++ {
		c := t.sp.Sample(t.rng)
		if !t.history.Contains(c) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("core: could not draw an unevaluated initial sample")
}

// SelectInitial returns up to k distinct not-yet-evaluated
// configurations drawn uniformly at random, without evaluating them —
// the ask/tell counterpart of the initial sampling phase, for callers
// (e.g. AskTell) that hand candidates to external workers. skip, when
// non-nil, excludes further configurations (such as currently leased
// ones). A short result means the pool net of skips has fewer than k
// configurations left.
func (t *Tuner) SelectInitial(k int, skip func(space.Config) bool) ([]space.Config, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: SelectInitial with k < 1")
	}
	if t.pool != nil {
		rem := t.pool.Remaining()
		avail := make([]int, 0, len(rem))
		for _, idx := range rem {
			if skip == nil || !skip(t.pool.Candidate(idx)) {
				avail = append(avail, idx)
			}
		}
		if k > len(avail) {
			k = len(avail)
		}
		out := make([]space.Config, 0, k)
		for len(out) < k {
			pick := t.rng.Intn(len(avail))
			out = append(out, t.pool.Candidate(avail[pick]))
			avail[pick] = avail[len(avail)-1]
			avail = avail[:len(avail)-1]
		}
		return out, nil
	}
	const maxTries = 100000
	var out []space.Config
	seen := make(map[string]bool, k)
	for try := 0; try < maxTries && len(out) < k; try++ {
		c := t.sp.Sample(t.rng)
		key := t.sp.Key(c)
		if t.history.Contains(c) || seen[key] || (skip != nil && skip(c)) {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out, nil
}

// markEvaluated removes c from the candidate pool in O(1).
func (t *Tuner) markEvaluated(c space.Config) {
	if t.pool != nil {
		t.pool.MarkEvaluated(c)
	}
}

// SampledPoolSize reports the size of the sampled candidate pool, or
// 0 when the tuner runs on an enumerated pool or no pool at all — the
// observable guarantee that large-space memory is bounded by the cap.
func (t *Tuner) SampledPoolSize() int {
	if t.sampled == nil {
		return 0
	}
	return t.sampled.Pool().Size()
}

// PoolExhaustedRetries reports how many times the sampled pool's
// rejection sampling hit its retry bound and settled for a pool
// smaller than the cap — the observable signal (surfaced in
// SessionInfo and /metrics) that a constraint rejects most of the
// grid, instead of a silently short pool. 0 when the tuner has no
// sampled pool.
func (t *Tuner) PoolExhaustedRetries() int64 {
	if t.sampled == nil {
		return 0
	}
	return t.sampled.ExhaustedRetries()
}

// RefreshPool redraws the sampled candidate pool (excluding evaluated
// configurations) so a long session explores beyond the initial cap's
// horizon. It errors when the tuner has no sampled pool, or when the
// engine bound pool state at construction (gp, geist) and so cannot
// follow a swap.
func (t *Tuner) RefreshPool() error {
	if t.sampled == nil {
		return fmt.Errorf("core: RefreshPool without a sampled pool (engine %q)", t.engine)
	}
	if t.poolBound {
		return fmt.Errorf("core: engine %q binds its candidate pool at construction and cannot refresh it", t.engine)
	}
	if err := t.sampled.Refresh(func(c space.Config) bool { return t.history.Contains(c) }); err != nil {
		return err
	}
	t.pool = t.sampled.Pool()
	// The scratch score/rank caches are keyed by history generation,
	// which a pool swap does not bump — drop them explicitly.
	t.scratch.invalidate()
	return nil
}
