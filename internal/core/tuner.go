package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Objective evaluates a configuration's true performance by running
// the full application (paper: f(x)). It is assumed expensive.
type Objective func(space.Config) float64

// Strategy selects how the next candidate is chosen from the
// surrogate (paper §III-D).
type Strategy int

const (
	// Ranking enumerates an exhaustive candidate set, scores every
	// not-yet-evaluated configuration, and picks the argmax. The right
	// choice for the discrete, finite spaces of HPC applications; also
	// guarantees no duplicate selections.
	Ranking Strategy = iota
	// Proposal samples candidates from the good density pg(x) and
	// picks the best-scoring one — the only viable option for
	// continuous spaces.
	Proposal
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Ranking:
		return "ranking"
	case Proposal:
		return "proposal"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a Tuner. The zero value plus a Seed reproduces
// the paper's setup: 20 initial samples, α = 0.20, Ranking on finite
// spaces and Proposal otherwise.
type Options struct {
	// InitialSamples seeds H_0 with uniformly random configurations
	// (paper §III-C step 1; 20 in the paper's experiments).
	InitialSamples int
	// Surrogate carries the density hyperparameters (α, smoothing,
	// bandwidth, prior).
	Surrogate SurrogateConfig
	// Strategy picks Ranking or Proposal. Ignored (forced to Proposal)
	// when the space has continuous parameters.
	Strategy Strategy
	// ProposalCandidates is the number of pg-samples scored per
	// iteration under the Proposal strategy.
	ProposalCandidates int
	// Candidates optionally fixes the Ranking candidate set. When nil,
	// the space is enumerated (requires a fully discrete space).
	Candidates []space.Config
	// Seed drives all pseudo-randomness; runs are reproducible.
	Seed uint64
	// OnStep, when non-nil, observes every evaluation (including the
	// initial samples) in order.
	OnStep func(iteration int, obs Observation)
	// Parallelism bounds the workers used for candidate scoring;
	// 0 means GOMAXPROCS.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.InitialSamples == 0 {
		o.InitialSamples = 20
	}
	if o.ProposalCandidates == 0 {
		o.ProposalCandidates = 100
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	o.Surrogate = o.Surrogate.withDefaults()
	return o
}

// Tuner runs HiPerBOt's iterative loop (paper §III-C): seed the
// history with random samples, then repeatedly build the surrogate,
// select the candidate with the highest expected improvement, evaluate
// it, and fold the observation back in.
type Tuner struct {
	sp      *space.Space
	obj     Objective
	opts    Options
	rng     *stats.RNG
	history *History

	candidates []space.Config // Ranking candidate pool
	remaining  []int          // indices into candidates not yet evaluated
	pos        map[string]int // candidate key → position in remaining
	surrogate  *Surrogate     // current model (nil before first build)
	strategy   Strategy
	iter       int
}

// NewTuner validates the options and prepares a tuner. The objective
// is not called yet; evaluation starts with Run or Step.
func NewTuner(sp *space.Space, obj Objective, opts Options) (*Tuner, error) {
	opts = opts.withDefaults()
	if obj == nil {
		return nil, fmt.Errorf("core: nil objective")
	}
	if opts.InitialSamples < 2 {
		return nil, fmt.Errorf("core: need at least 2 initial samples, got %d", opts.InitialSamples)
	}
	if err := opts.Surrogate.validate(); err != nil {
		return nil, err
	}
	t := &Tuner{
		sp:      sp,
		obj:     obj,
		opts:    opts,
		rng:     stats.NewRNG(opts.Seed),
		history: NewHistory(sp),
	}
	t.strategy = opts.Strategy
	if !sp.AllDiscrete() && t.strategy == Ranking && opts.Candidates == nil {
		// Ranking needs a finite candidate set; fall back to Proposal.
		t.strategy = Proposal
	}
	if t.strategy == Ranking {
		if opts.Candidates != nil {
			t.candidates = opts.Candidates
		} else {
			t.candidates = sp.Enumerate()
		}
		if len(t.candidates) == 0 {
			return nil, fmt.Errorf("core: empty candidate set")
		}
		t.remaining = make([]int, len(t.candidates))
		t.pos = make(map[string]int, len(t.candidates))
		for i := range t.remaining {
			t.remaining[i] = i
			key := sp.Key(t.candidates[i])
			if _, dup := t.pos[key]; dup {
				return nil, fmt.Errorf("core: duplicate candidate %s", sp.Describe(t.candidates[i]))
			}
			t.pos[key] = i
		}
	}
	return t, nil
}

// History exposes the observation history.
func (t *Tuner) History() *History { return t.history }

// Surrogate returns the most recently built surrogate (nil until the
// first model-based step).
func (t *Tuner) Surrogate() *Surrogate { return t.surrogate }

// StrategyInUse reports the effective selection strategy.
func (t *Tuner) StrategyInUse() Strategy { return t.strategy }

// Evaluations returns the number of objective evaluations so far.
func (t *Tuner) Evaluations() int { return t.history.Len() }

// InitialSamples returns the size of the initial random-sampling
// phase (Options.InitialSamples after defaulting).
func (t *Tuner) InitialSamples() int { return t.opts.InitialSamples }

// Best returns the best observation so far; panics before any
// evaluation.
func (t *Tuner) Best() Observation { return t.history.Best() }

// Step performs exactly one objective evaluation: one of the initial
// random samples while H is smaller than InitialSamples, afterwards
// one surrogate-guided selection. It returns the new observation.
func (t *Tuner) Step() (Observation, error) {
	var c space.Config
	switch {
	case t.history.Len() < t.opts.InitialSamples:
		var err error
		c, err = t.sampleInitial()
		if err != nil {
			return Observation{}, err
		}
	default:
		s, err := BuildSurrogate(t.history, t.opts.Surrogate)
		if err != nil {
			return Observation{}, err
		}
		t.surrogate = s
		c, err = t.selectCandidate(s)
		if err != nil {
			return Observation{}, err
		}
	}
	v := t.obj(c)
	if err := t.history.Add(c, v); err != nil {
		return Observation{}, err
	}
	t.markEvaluated(c)
	obs := Observation{Config: c, Value: v}
	if t.opts.OnStep != nil {
		t.opts.OnStep(t.iter, obs)
	}
	t.iter++
	return obs, nil
}

// Run performs objective evaluations until the history holds budget
// observations (initial samples included) and returns the best.
func (t *Tuner) Run(budget int) (Observation, error) {
	if budget < t.opts.InitialSamples {
		return Observation{}, fmt.Errorf("core: budget %d smaller than %d initial samples",
			budget, t.opts.InitialSamples)
	}
	if t.strategy == Ranking && budget > len(t.candidates) {
		return Observation{}, fmt.Errorf("core: budget %d exceeds the %d available configurations",
			budget, len(t.candidates))
	}
	for t.history.Len() < budget {
		if _, err := t.Step(); err != nil {
			return Observation{}, err
		}
	}
	return t.history.Best(), nil
}

// RunUntilStall evaluates until the best value has not improved by
// more than tol (relative) for stallLimit consecutive model-guided
// steps, or until maxBudget evaluations — the paper's alternative
// termination criterion ("if the score of the new samples do not
// improve as iterations progress").
func (t *Tuner) RunUntilStall(maxBudget, stallLimit int, tol float64) (Observation, error) {
	if stallLimit < 1 {
		return Observation{}, fmt.Errorf("core: stallLimit must be >= 1")
	}
	stall := 0
	bestSoFar := math.Inf(1)
	for t.history.Len() < maxBudget {
		if t.strategy == Ranking && len(t.remaining) == 0 {
			break
		}
		obs, err := t.Step()
		if err != nil {
			return Observation{}, err
		}
		if t.history.Len() <= t.opts.InitialSamples {
			bestSoFar = t.history.Best().Value
			continue
		}
		if obs.Value < bestSoFar*(1-tol) {
			bestSoFar = obs.Value
			stall = 0
		} else {
			stall++
			if stall >= stallLimit {
				break
			}
		}
	}
	return t.history.Best(), nil
}

// sampleInitial draws a uniformly random configuration that has not
// been evaluated yet.
func (t *Tuner) sampleInitial() (space.Config, error) {
	if t.strategy == Ranking {
		if len(t.remaining) == 0 {
			return nil, fmt.Errorf("core: candidate pool exhausted during initialization")
		}
		pick := t.rng.Intn(len(t.remaining))
		return t.candidates[t.remaining[pick]], nil
	}
	const maxTries = 100000
	for try := 0; try < maxTries; try++ {
		c := t.sp.Sample(t.rng)
		if !t.history.Contains(c) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("core: could not draw an unevaluated initial sample")
}

// SelectInitial returns up to k distinct not-yet-evaluated
// configurations drawn uniformly at random, without evaluating them —
// the ask/tell counterpart of the initial sampling phase, for callers
// (e.g. AskTell) that hand candidates to external workers. skip, when
// non-nil, excludes further configurations (such as currently leased
// ones). A short result means the pool net of skips has fewer than k
// configurations left.
func (t *Tuner) SelectInitial(k int, skip func(space.Config) bool) ([]space.Config, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: SelectInitial with k < 1")
	}
	if t.strategy == Ranking {
		avail := make([]int, 0, len(t.remaining))
		for _, idx := range t.remaining {
			if skip == nil || !skip(t.candidates[idx]) {
				avail = append(avail, idx)
			}
		}
		if k > len(avail) {
			k = len(avail)
		}
		out := make([]space.Config, 0, k)
		for len(out) < k {
			pick := t.rng.Intn(len(avail))
			out = append(out, t.candidates[avail[pick]])
			avail[pick] = avail[len(avail)-1]
			avail = avail[:len(avail)-1]
		}
		return out, nil
	}
	const maxTries = 100000
	var out []space.Config
	seen := make(map[string]bool, k)
	for try := 0; try < maxTries && len(out) < k; try++ {
		c := t.sp.Sample(t.rng)
		key := t.sp.Key(c)
		if t.history.Contains(c) || seen[key] || (skip != nil && skip(c)) {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out, nil
}

// markEvaluated removes c from the Ranking candidate pool in O(1).
func (t *Tuner) markEvaluated(c space.Config) {
	if t.strategy != Ranking {
		return
	}
	key := t.sp.Key(c)
	i, ok := t.pos[key]
	if !ok {
		return
	}
	last := len(t.remaining) - 1
	moved := t.remaining[last]
	t.remaining[i] = moved
	t.remaining = t.remaining[:last]
	delete(t.pos, key)
	if i <= last-1 {
		t.pos[t.sp.Key(t.candidates[moved])] = i
	}
}

// selectCandidate picks the next configuration to evaluate.
func (t *Tuner) selectCandidate(s *Surrogate) (space.Config, error) {
	switch t.strategy {
	case Ranking:
		return t.selectByRanking(s)
	case Proposal:
		return t.selectByProposal(s)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", t.strategy)
	}
}

// selectByRanking scores every remaining candidate in parallel and
// returns the argmax (ties broken by pool order, which is stable for a
// fixed seed).
func (t *Tuner) selectByRanking(s *Surrogate) (space.Config, error) {
	if len(t.remaining) == 0 {
		return nil, fmt.Errorf("core: no unevaluated candidates remain")
	}
	scores := make([]float64, len(t.remaining))
	parallelFor(len(t.remaining), t.opts.Parallelism, func(i int) {
		scores[i] = s.Score(t.candidates[t.remaining[i]])
	})
	best := 0
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[best] {
			best = i
		}
	}
	return t.candidates[t.remaining[best]], nil
}

// selectByProposal draws candidates from pg and returns the
// best-scoring previously unevaluated one.
func (t *Tuner) selectByProposal(s *Surrogate) (space.Config, error) {
	var best space.Config
	bestScore := math.Inf(-1)
	misses := 0
	for i := 0; i < t.opts.ProposalCandidates; i++ {
		c := s.SampleGood(t.rng)
		if t.history.Contains(c) {
			misses++
			continue
		}
		if sc := s.Score(c); sc > bestScore {
			bestScore = sc
			best = c
		}
	}
	if best == nil {
		// Every proposal was a duplicate (tiny discrete space); fall
		// back to uniform exploration.
		for try := 0; try < 100000; try++ {
			c := t.sp.Sample(t.rng)
			if !t.history.Contains(c) {
				return c, nil
			}
		}
		return nil, fmt.Errorf("core: proposal strategy exhausted the space")
	}
	return best, nil
}

// parallelFor runs body(i) for i in [0, n) on up to workers goroutines.
func parallelFor(n, workers int, body func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
