package core

import (
	"fmt"
	"hash/fnv"
	"strings"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// Pending-observation overlay (batch Bayesian optimization via the
// constant-liar heuristic, Watanabe's TPE survey). A service hands out
// candidates whose true values are still being computed; until the
// results arrive, the surrogate knows nothing about them and would
// happily re-propose their immediate neighborhood to the next asker.
// The fix is to *fantasize*: pretend each in-flight candidate has
// already been observed at a made-up ("liar") value, fit against
// observed + fantasized points, and let the densities steer the next
// pick elsewhere.
//
// The overlay stores only the pending configurations; fantasy values
// are derived at fit time from the observed values under the session's
// LiarPolicy. That makes the fantasized history a pure function of
// (generation, PendingHash), which is exactly the composed cache key
// the engines use — the exact generation-keyed fit caches from the
// incremental hot path stay valid, and when no leases are outstanding
// PendingHash is 0 and every code path degenerates bit-identically to
// the overlay-free behavior.

// LiarPolicy selects the fantasy value assigned to pending
// observations: a summary statistic of the observed objective values.
type LiarPolicy int

const (
	// LiarMean fantasizes the arithmetic mean of the observed values —
	// the neutral default: pending points neither attract (as "good"
	// members) nor repel future exploration more than the data warrants.
	LiarMean LiarPolicy = iota
	// LiarMin fantasizes the best (minimum) observed value — the
	// optimistic, most repellent choice: pending points join the good
	// set, pushing the next picks maximally away from in-flight work.
	LiarMin
	// LiarMax fantasizes the worst (maximum) observed value — the
	// pessimistic choice: pending points are written off as bad, which
	// diversifies the least but never distorts the good density.
	LiarMax
)

// ParseLiarPolicy maps a wire/flag spelling to a LiarPolicy. The empty
// string is the default (mean).
func ParseLiarPolicy(s string) (LiarPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "mean":
		return LiarMean, nil
	case "min":
		return LiarMin, nil
	case "max":
		return LiarMax, nil
	default:
		return 0, fmt.Errorf("core: unknown liar policy %q (want min, mean, or max)", s)
	}
}

// String implements fmt.Stringer.
func (p LiarPolicy) String() string {
	switch p {
	case LiarMin:
		return "min"
	case LiarMax:
		return "max"
	case LiarMean:
		return "mean"
	default:
		return fmt.Sprintf("LiarPolicy(%d)", int(p))
	}
}

// LiarPolicies lists the accepted policy spellings, for flag help and
// error messages.
func LiarPolicies() []string { return []string{"min", "mean", "max"} }

// pendingEntry is one in-flight configuration of the overlay.
type pendingEntry struct {
	key string
	c   space.Config
}

// pendingKeyHash hashes one pending key into the order-independent
// overlay hash. FNV-1a alone XORs poorly over similar keys, so the
// digest is scrambled through a splitmix64 finalizer.
func pendingKeyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // fnv never errors
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SetLiar selects the constant-liar policy used for fantasy values.
// Changing the policy invalidates the cached fantasized view.
func (h *History) SetLiar(p LiarPolicy) {
	if h.liar != p {
		h.liar = p
		h.fant = nil
	}
}

// Liar returns the active constant-liar policy.
func (h *History) Liar() LiarPolicy { return h.liar }

// AddPending registers c as in-flight: fitted models will see it as a
// fantasy observation until it is removed (result reported or lease
// expired). Already-pending configurations are a no-op.
func (h *History) AddPending(c space.Config) {
	key := h.sp.Key(c)
	if _, ok := h.pendIdx[key]; ok {
		return
	}
	if h.pendIdx == nil {
		h.pendIdx = make(map[string]int)
	}
	h.pendIdx[key] = len(h.pend)
	h.pend = append(h.pend, pendingEntry{key: key, c: c.Clone()})
	h.pendHash ^= pendingKeyHash(key)
}

// RemovePending drops c from the overlay (no-op when not pending).
func (h *History) RemovePending(c space.Config) {
	h.RemovePendingKey(h.sp.Key(c))
}

// RemovePendingKey is RemovePending by space key — the spelling used
// by lease bookkeeping, which already tracks keys.
func (h *History) RemovePendingKey(key string) {
	i, ok := h.pendIdx[key]
	if !ok {
		return
	}
	last := len(h.pend) - 1
	if i != last {
		h.pend[i] = h.pend[last]
		h.pendIdx[h.pend[i].key] = i
	}
	h.pend[last] = pendingEntry{}
	h.pend = h.pend[:last]
	delete(h.pendIdx, key)
	h.pendHash ^= pendingKeyHash(key)
}

// PendingLen returns the number of in-flight configurations.
func (h *History) PendingLen() int { return len(h.pend) }

// PendingHash returns an order-independent digest of the pending set:
// 0 when empty, and any add/remove round-trip restores the previous
// value. Composed with Generation it keys every pending-aware cache
// (model fits, scratch scores) — equal (generation, hash) pairs mean
// the fantasized history is unchanged.
func (h *History) PendingHash() uint64 { return h.pendHash }

// Fantasized returns the history the engines should fit when pending
// work exists: the observed history extended with one fantasy
// observation per pending configuration, valued under the liar policy.
// With an empty overlay it returns h itself, so the no-pending fit
// path is untouched. The result is cached by (generation,
// PendingHash) and is a fitting-only view: it shares observation
// structs with h, has no duplicate tracking, and must not be mutated.
func (h *History) Fantasized() *History {
	if len(h.pend) == 0 {
		return h
	}
	if h.fant != nil && h.fantGen == h.gen && h.fantHash == h.pendHash {
		return h.fant
	}
	f := &History{sp: h.sp, gen: h.gen, best: h.best}
	f.obs = make([]Observation, 0, len(h.obs)+len(h.pend))
	f.obs = append(f.obs, h.obs...)
	lie := h.liarValue()
	vec := h.liarVector()
	for _, pe := range h.pend {
		f.obs = append(f.obs, Observation{Config: pe.c, Value: lie, Objectives: vec})
	}
	if f.best < 0 {
		f.best = 0 // no real observations yet: any fantasy is "best"
	}
	h.fant, h.fantGen, h.fantHash = f, h.gen, h.pendHash
	return f
}

// liarValue computes the fantasy scalar under the active policy. Every
// policy stays inside the observed value range, so Best never moves.
func (h *History) liarValue() float64 {
	if len(h.obs) == 0 {
		return 0
	}
	switch h.liar {
	case LiarMin:
		return h.obs[h.best].Value
	case LiarMax:
		max := h.obs[0].Value
		for _, o := range h.obs[1:] {
			if o.Value > max {
				max = o.Value
			}
		}
		return max
	default:
		var sum float64
		for _, o := range h.obs {
			sum += o.Value
		}
		return sum / float64(len(h.obs))
	}
}

// liarVector computes the component-wise fantasy objective vector when
// every observed observation carries a uniform-length vector (the
// condition under which multi-objective engines use them; see
// objective.HistoryVectors), and nil otherwise — a nil keeps the
// degraded all-scalar view consistent between observed and fantasy
// points. All fantasies share the returned slice; it is read-only.
func (h *History) liarVector() []float64 {
	if len(h.obs) == 0 || h.obs[0].Objectives == nil {
		return nil
	}
	m := len(h.obs[0].Objectives)
	for _, o := range h.obs {
		if o.Objectives == nil || len(o.Objectives) != m {
			return nil
		}
	}
	vec := make([]float64, m)
	switch h.liar {
	case LiarMin:
		copy(vec, h.obs[0].Objectives)
		for _, o := range h.obs[1:] {
			for j, v := range o.Objectives {
				if v < vec[j] {
					vec[j] = v
				}
			}
		}
	case LiarMax:
		copy(vec, h.obs[0].Objectives)
		for _, o := range h.obs[1:] {
			for j, v := range o.Objectives {
				if v > vec[j] {
					vec[j] = v
				}
			}
		}
	default:
		for _, o := range h.obs {
			for j, v := range o.Objectives {
				vec[j] += v
			}
		}
		for j := range vec {
			vec[j] /= float64(len(h.obs))
		}
	}
	return vec
}
