package core

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// TestPackObservationsRoundTrip checks that the packed snapshot form
// reproduces every observation bit-for-bit: config vectors, values
// with awkward float representations, metrics maps, and objective
// vectors.
func TestPackObservationsRoundTrip(t *testing.T) {
	sp := space.New(
		space.DiscreteInts("a", 0, 1, 2, 3),
		space.DiscreteInts("b", 10, 20, 30),
	)
	h := NewHistory(sp)
	// Values chosen to break any decimal round-trip: 0.1+0.2 has no
	// short representation, Nextafter differs in the last ulp only.
	awkward := []float64{0.1 + 0.2, math.Nextafter(1.0, 2.0), -0.0, 1e-308, math.MaxFloat64}
	obsIn := []Observation{
		{Config: space.Config{0, 0}, Value: awkward[0]},
		{Config: space.Config{1, 2}, Value: awkward[1], Metrics: map[string]float64{"lat": awkward[2], "cost": 3.5}},
		{Config: space.Config{2, 1}, Value: awkward[3], Objectives: []float64{awkward[4], 2}},
		{Config: space.Config{3, 0}, Value: 42, Metrics: map[string]float64{"lat": 1}, Objectives: []float64{1, 2}},
	}
	for _, o := range obsIn {
		if err := h.AddObs(o); err != nil {
			t.Fatal(err)
		}
	}

	packed := PackObservations(h)
	out, err := UnpackObservations(sp, packed, h.Len())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(obsIn) {
		t.Fatalf("unpacked %d observations, want %d", len(out), len(obsIn))
	}
	for i, got := range out {
		want := obsIn[i]
		for d := range want.Config {
			if math.Float64bits(got.Config[d]) != math.Float64bits(want.Config[d]) {
				t.Errorf("obs %d config[%d] = %v, want bit-identical %v", i, d, got.Config[d], want.Config[d])
			}
		}
		if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
			t.Errorf("obs %d value = %v, want bit-identical %v", i, got.Value, want.Value)
		}
		if len(got.Metrics) != len(want.Metrics) {
			t.Errorf("obs %d metrics = %v, want %v", i, got.Metrics, want.Metrics)
		}
		for k, v := range want.Metrics {
			if math.Float64bits(got.Metrics[k]) != math.Float64bits(v) {
				t.Errorf("obs %d metric %q = %v, want %v", i, k, got.Metrics[k], v)
			}
		}
		if len(got.Objectives) != len(want.Objectives) {
			t.Errorf("obs %d objectives = %v, want %v", i, got.Objectives, want.Objectives)
		}
		for j, v := range want.Objectives {
			if math.Float64bits(got.Objectives[j]) != math.Float64bits(v) {
				t.Errorf("obs %d objective %d = %v, want %v", i, j, got.Objectives[j], v)
			}
		}
	}

	// A rebuilt history replays into an identical state: same best,
	// same duplicate rejection.
	h2 := NewHistory(sp)
	for _, o := range out {
		if err := h2.AddObs(o); err != nil {
			t.Fatal(err)
		}
	}
	if h2.Best().Value != h.Best().Value {
		t.Fatalf("replayed best %v, want %v", h2.Best().Value, h.Best().Value)
	}
	if err := h2.AddObs(obsIn[0]); err == nil {
		t.Fatal("replayed history accepted a duplicate observation")
	}
}

// TestUnpackObservationsValidation checks that truncated payloads and
// out-of-range extras fail loudly instead of resuming a wrong history.
func TestUnpackObservationsValidation(t *testing.T) {
	sp := space.New(space.DiscreteInts("a", 0, 1, 2, 3))
	h := NewHistory(sp)
	h.MustAdd(space.Config{1}, 1)
	h.MustAdd(space.Config{2}, 2)
	packed := PackObservations(h)

	if _, err := UnpackObservations(sp, packed, 3); err == nil {
		t.Fatal("unpack accepted an event count larger than the payload")
	}
	bad := packed
	bad.Extras = []PackedExtra{{Index: 7, Metrics: map[string]float64{"x": 1}}}
	if _, err := UnpackObservations(sp, bad, 2); err == nil {
		t.Fatal("unpack accepted an extra row outside the observation range")
	}
	bad = packed
	bad.Configs = packed.Configs[:len(packed.Configs)-3]
	if _, err := UnpackObservations(sp, bad, 2); err == nil {
		t.Fatal("unpack accepted a truncated config payload")
	}
}
