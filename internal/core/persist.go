package core

import (
	"fmt"
	"io"

	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Persistence: tuning campaigns over real applications run for hours
// and die for boring reasons (node reclaimed, queue timeout). A
// History can be checkpointed to CSV after every evaluation and a new
// Tuner resumed from it via Options.Resume, continuing exactly where
// the campaign stopped — no evaluations are repeated because resumed
// configurations are removed from the candidate pool.

// WriteCSV serializes the history in evaluation order using the same
// column format as dataset CSVs (parameter columns, then "value").
func (h *History) WriteCSV(w io.Writer) error {
	if h.Len() == 0 {
		return fmt.Errorf("core: cannot serialize an empty history")
	}
	configs := make([]space.Config, h.Len())
	values := make([]float64, h.Len())
	for i, o := range h.obs {
		configs[i] = o.Config
		values[i] = o.Value
	}
	tbl, err := dataset.New("history", "value", h.sp, configs, values)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return tbl.WriteCSV(w)
}

// LoadHistoryCSV reads a history written by WriteCSV, preserving the
// evaluation order.
func LoadHistoryCSV(sp *space.Space, r io.Reader) (*History, error) {
	tbl, err := dataset.ReadCSV("history", sp, r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	h := NewHistory(sp)
	for i := 0; i < tbl.Len(); i++ {
		if err := h.Add(tbl.Config(i), tbl.Value(i)); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Resume seeds the tuner with previously collected observations (e.g.
// a checkpointed history). Resumed observations count toward the
// initial-sample quota, so a tuner resumed past InitialSamples goes
// straight to model-guided selection. It must be called before any
// Step/Run, and every resumed configuration must be valid (and, under
// Ranking, part of the candidate pool).
func (t *Tuner) Resume(h *History) error {
	if h == nil {
		return fmt.Errorf("core: Resume with an empty history")
	}
	return t.ResumeObs(h.Observations())
}

// ResumeObs is Resume over a bare observation slice — the snapshot
// restore path, which unpacks canonical vectors directly instead of
// building an intermediate History first.
func (t *Tuner) ResumeObs(obs []Observation) error {
	if t.history.Len() > 0 {
		return fmt.Errorf("core: Resume after evaluations have started")
	}
	if len(obs) == 0 {
		return fmt.Errorf("core: Resume with an empty history")
	}
	t.history.Grow(len(obs))
	for _, o := range obs {
		if err := t.sp.Check(o.Config); err != nil {
			return fmt.Errorf("core: resumed observation invalid: %w", err)
		}
		if t.pool != nil {
			if t.pool.IndexOf(o.Config) < 0 {
				return fmt.Errorf("core: resumed configuration %s not in the candidate pool",
					t.sp.Describe(o.Config))
			}
		}
		if err := t.history.AddObs(o); err != nil {
			return err
		}
		t.markEvaluated(o.Config)
		t.iter++
	}
	return nil
}
