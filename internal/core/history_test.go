package core

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func histSpace() *space.Space {
	return space.New(
		space.Discrete("a", "x", "y", "z"),
		space.DiscreteInts("b", 1, 2, 4, 8),
	)
}

func TestHistoryAddAndBest(t *testing.T) {
	h := NewHistory(histSpace())
	h.MustAdd(space.Config{0, 0}, 5)
	h.MustAdd(space.Config{1, 0}, 3)
	h.MustAdd(space.Config{2, 0}, 7)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	best := h.Best()
	if best.Value != 3 || !best.Config.Equal(space.Config{1, 0}) {
		t.Fatalf("Best = %+v", best)
	}
}

func TestHistoryRejectsDuplicates(t *testing.T) {
	h := NewHistory(histSpace())
	h.MustAdd(space.Config{0, 0}, 5)
	if err := h.Add(space.Config{0, 0}, 6); err == nil {
		t.Fatal("duplicate accepted")
	}
	if h.Len() != 1 {
		t.Fatal("failed add mutated history")
	}
}

func TestHistoryContains(t *testing.T) {
	h := NewHistory(histSpace())
	h.MustAdd(space.Config{1, 2}, 1)
	if !h.Contains(space.Config{1, 2}) || h.Contains(space.Config{2, 1}) {
		t.Fatal("Contains wrong")
	}
}

func TestHistoryAddClonesConfig(t *testing.T) {
	h := NewHistory(histSpace())
	c := space.Config{1, 2}
	h.MustAdd(c, 1)
	c[0] = 0
	if !h.At(0).Config.Equal(space.Config{1, 2}) {
		t.Fatal("history aliases caller's config")
	}
}

func TestHistoryBestPanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistory(histSpace()).Best()
}

func TestBestTrajectoryMonotone(t *testing.T) {
	h := NewHistory(histSpace())
	vals := []float64{5, 7, 3, 9, 2, 4}
	for i, v := range vals {
		h.MustAdd(space.Config{float64(i % 3), float64(i % 4)}, v)
	}
	want := []float64{5, 5, 3, 3, 2, 2}
	got := h.BestTrajectory()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trajectory = %v, want %v", got, want)
		}
	}
}

func TestHistoryValuesOrder(t *testing.T) {
	h := NewHistory(histSpace())
	h.MustAdd(space.Config{0, 0}, 5)
	h.MustAdd(space.Config{0, 1}, 2)
	vs := h.Values()
	if vs[0] != 5 || vs[1] != 2 {
		t.Fatalf("Values = %v", vs)
	}
}
