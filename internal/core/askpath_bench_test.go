package core_test

// Benchmarks for the steady-state ask/tell hot path: a warm
// 40-observation Kripke-exec session asked for its next candidate
// over and over. This is the daemon's serving loop (hiperbotd
// Suggest), where selection overhead *is* the workload — unlike the
// paper's offline setting (§VII), where one application run dwarfs it.
// EXPERIMENTS.md records the before/after numbers for the
// fit-incremental + scratch-buffer optimization.

import (
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// warmKripkeTuner returns a ranking tuner over the Kripke exec table
// warmed with warm observations (20 initial + model-guided up to warm).
func warmKripkeTuner(tb testing.TB, warm int) *core.Tuner {
	tb.Helper()
	tbl := kripke.Exec().Table()
	cands := make([]space.Config, tbl.Len())
	for i := 0; i < tbl.Len(); i++ {
		cands[i] = tbl.Config(i)
	}
	tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
		Seed:       42,
		Candidates: cands,
	})
	if err != nil {
		tb.Fatal(err)
	}
	for tn.Evaluations() < warm {
		if _, err := tn.Step(); err != nil {
			tb.Fatal(err)
		}
	}
	return tn
}

// BenchmarkSelectBatchWarm measures one model-guided selection with no
// intervening observation — the pure Ask path (fit + score + argmax).
func BenchmarkSelectBatchWarm(b *testing.B) {
	tn := warmKripkeTuner(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		picks, err := tn.SelectBatch(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(picks) != 1 {
			b.Fatal("no pick")
		}
	}
}

// BenchmarkAskWarmSteadyState measures AskTell.Ask on the warm session
// with leases expiring between calls, so the history never changes —
// the shape of a worker fleet polling a session between evaluations.
func BenchmarkAskWarmSteadyState(b *testing.B) {
	at := core.NewAskTell(warmKripkeTuner(b, 40))
	now := time.Unix(0, 0)
	const ttl = time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(2 * ttl) // previous lease has lapsed
		picks, err := at.Ask(1, ttl, now)
		if err != nil {
			b.Fatal(err)
		}
		if len(picks) != 1 {
			b.Fatal("no pick")
		}
	}
}

// BenchmarkAskTellWarm interleaves one Tell per Ask — the steady-state
// serving loop once workers report results (each Tell invalidates the
// fitted model, so this measures the incremental refit too).
func BenchmarkAskTellWarm(b *testing.B) {
	tbl := kripke.Exec().Table()
	at := core.NewAskTell(warmKripkeTuner(b, 40))
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Minute)
		picks, err := at.Ask(1, time.Minute, now)
		if err != nil {
			b.Fatal(err)
		}
		if len(picks) == 0 {
			// The finite table is exhausted; restart on a fresh warm
			// session outside the timed region.
			b.StopTimer()
			at = core.NewAskTell(warmKripkeTuner(b, 40))
			b.StartTimer()
			continue
		}
		v, ok := tbl.Lookup(picks[0])
		if !ok {
			b.Fatal("pick outside the table")
		}
		if _, err := at.Tell(picks[0], v); err != nil {
			b.Fatal(err)
		}
	}
}
