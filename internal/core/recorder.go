package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// Recorder streams tuning-session events as JSON Lines — one object
// per evaluation — so long campaigns can be monitored (tail -f) and
// post-processed without custom parsing. Wire it up through
// Options.OnStep:
//
//	rec := core.NewRecorder(w, sp)
//	opts.OnStep = rec.OnStep
//
// Each line carries the iteration, the configuration (as a
// name→label map), the measured value (plus its raw metrics when the
// observation carried any), and the best value so far.
type Recorder struct {
	mu   sync.Mutex
	enc  *json.Encoder
	sp   *space.Space
	dir  Direction
	best float64
	n    int
	err  error
}

// RecorderEvent is the JSONL schema of one evaluation. Metrics and
// Objectives are present only when the observation carried them:
// Metrics are the raw named measurements, Objectives the canonical
// all-minimize vector — journaling the vector verbatim lets a restart
// replay multi-objective histories bit-identically without
// re-deriving them from the metrics.
type RecorderEvent struct {
	Iteration  int                `json:"iteration"`
	Config     map[string]string  `json:"config"`
	Value      float64            `json:"value"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Objectives []float64          `json:"objectives,omitempty"`
	BestSoFar  float64            `json:"best_so_far"`
}

// NewRecorder creates a recorder writing to w for configurations of sp.
// The zero-value direction is Minimize — best_so_far is the running
// minimum, exactly the legacy behavior.
func NewRecorder(w io.Writer, sp *space.Space) *Recorder {
	return &Recorder{enc: json.NewEncoder(w), sp: sp}
}

// SetDirection switches best-so-far tracking to the given objective
// direction. It must be called before the first event; afterwards the
// running best would be stale under the new sense.
func (r *Recorder) SetDirection(d Direction) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n > 0 {
		panic("core: Recorder.SetDirection after events were recorded")
	}
	r.dir = d
}

// OnStep is an Options.OnStep callback. Write errors are sticky and
// reported by Err (OnStep has no error return).
func (r *Recorder) OnStep(iteration int, obs Observation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 || r.dir.Better(obs.Value, r.best) {
		r.best = obs.Value
	}
	r.n++
	cfg := make(map[string]string, r.sp.NumParams())
	for i := 0; i < r.sp.NumParams(); i++ {
		p := r.sp.Param(i)
		if p.Kind == space.DiscreteKind {
			cfg[p.Name] = p.Level(int(obs.Config[i]))
		} else {
			cfg[p.Name] = fmt.Sprintf("%g", obs.Config[i])
		}
	}
	if err := r.enc.Encode(RecorderEvent{
		Iteration:  iteration,
		Config:     cfg,
		Value:      obs.Value,
		Metrics:    obs.Metrics,
		Objectives: obs.Objectives,
		BestSoFar:  r.best,
	}); err != nil && r.err == nil {
		r.err = err
	}
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Events returns the number of events recorded.
func (r *Recorder) Events() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// ReadEvents parses a JSONL stream written by a Recorder.
func ReadEvents(rd io.Reader) ([]RecorderEvent, error) {
	dec := json.NewDecoder(rd)
	var out []RecorderEvent
	for {
		var ev RecorderEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("core: reading events: %w", err)
		}
		out = append(out, ev)
	}
}
