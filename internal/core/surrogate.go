package core

import (
	"fmt"
	"math"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// density is a one-dimensional probability density over a single
// parameter's domain, the building block of the factorized surrogate
// (paper eq. 7-8).
type density interface {
	// logProb returns the log density/mass at the parameter value
	// (level index for discrete parameters, real value for continuous).
	logProb(x float64) float64
	// sample draws a value from the density.
	sample(r *stats.RNG) float64
	// probs returns a discretized probability vector for divergence
	// computations (§VI).
	probs() []float64
}

// discreteDensity wraps a smoothed categorical histogram (§III-B.1).
// Log masses are precomputed: Ranking scores every candidate in the
// space each iteration, so logProb sits on the hot path.
type discreteDensity struct {
	cat  *stats.Categorical
	logP []float64
}

func newDiscreteDensity(cat *stats.Categorical) discreteDensity {
	logP := make([]float64, cat.K())
	for i := range logP {
		logP[i] = math.Log(cat.Prob(i))
	}
	return discreteDensity{cat: cat, logP: logP}
}

func (d discreteDensity) logProb(x float64) float64 {
	return d.logP[int(x)]
}
func (d discreteDensity) sample(r *stats.RNG) float64 {
	return float64(d.cat.Sample(r))
}
func (d discreteDensity) probs() []float64 { return d.cat.Probs() }

// continuousDensity wraps a Gaussian KDE (§III-B.2) with the parameter
// bounds and a bin count for discretized divergences.
type continuousDensity struct {
	kde    *stats.KDE
	lo, hi float64
	bins   int
}

func (d continuousDensity) logProb(x float64) float64 {
	p := d.kde.Density(x)
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}
func (d continuousDensity) sample(r *stats.RNG) float64 {
	return d.kde.Sample(r)
}
func (d continuousDensity) probs() []float64 {
	return d.kde.DiscretizedProbs(d.lo, d.hi, d.bins)
}

// SurrogateConfig collects the surrogate's hyperparameters.
type SurrogateConfig struct {
	// Quantile is α: the fraction of the history labeled "good"
	// (paper §III-C step 2; 0.20 in the paper's experiments).
	Quantile float64
	// Smoothing is the Laplace pseudo-count for discrete histograms.
	Smoothing float64
	// Bandwidth is the Gaussian-kernel bandwidth for continuous
	// parameters; <= 0 selects Scott's rule per density.
	Bandwidth float64
	// Bins discretizes continuous densities for importance analysis.
	Bins int
	// Prior, when non-nil, mixes source-domain densities into pg/pb
	// with weight PriorWeight (paper eqs. 9-10).
	Prior *Prior
	// PriorWeight is w in eqs. 9-10.
	PriorWeight float64
}

// withDefaults fills unset fields with the paper's choices.
func (c SurrogateConfig) withDefaults() SurrogateConfig {
	if c.Quantile == 0 {
		c.Quantile = 0.20
	}
	if c.Smoothing == 0 {
		c.Smoothing = 1.0
	}
	if c.Bins == 0 {
		c.Bins = 20
	}
	if c.PriorWeight == 0 {
		c.PriorWeight = 1.0
	}
	return c
}

func (c SurrogateConfig) validate() error {
	if c.Quantile <= 0 || c.Quantile >= 1 {
		return fmt.Errorf("core: quantile %v outside (0,1)", c.Quantile)
	}
	if c.Smoothing <= 0 {
		return fmt.Errorf("core: smoothing %v must be positive", c.Smoothing)
	}
	if c.Bins < 2 {
		return fmt.Errorf("core: bins %v must be >= 2", c.Bins)
	}
	if c.PriorWeight < 0 {
		return fmt.Errorf("core: prior weight %v must be >= 0", c.PriorWeight)
	}
	return nil
}

// Surrogate is the cheap model I_t(x) of the expensive objective: a
// pair of factorized densities pg (good) and pb (bad) split at the
// α-quantile threshold y_τ.
type Surrogate struct {
	sp        *space.Space
	good, bad []density
	threshold float64
	nGood     int
	nBad      int
	alpha     float64
}

// BuildSurrogate constructs the surrogate from the observation
// history (paper §III-C step 2). The history must be non-empty. It is
// a cold build: all statistics are accumulated from scratch through
// the same surrogateBuilder the incremental TPEModel.Fit path uses,
// so the two are bit-identical by construction.
func BuildSurrogate(h *History, cfg SurrogateConfig) (*Surrogate, error) {
	if h.Len() == 0 {
		return nil, fmt.Errorf("core: BuildSurrogate on empty history")
	}
	b, err := newSurrogateBuilder(h.Space(), cfg)
	if err != nil {
		return nil, err
	}
	return b.Fold(h)
}

// BuildMaskedSurrogate constructs a surrogate from an explicit
// good/bad partition instead of the α-quantile value split — the seam
// multi-objective engines use to feed a Pareto-derived "good" set into
// the same factorized pg/pb density machinery (densities are assembled
// through the identical surrogateBuilder path, so masked and quantile
// builds cannot drift apart). len(goodMask) must equal h.Len(); the
// reported Threshold is NaN (no scalar split value exists).
func BuildMaskedSurrogate(h *History, goodMask []bool, cfg SurrogateConfig) (*Surrogate, error) {
	if h.Len() == 0 {
		return nil, fmt.Errorf("core: BuildMaskedSurrogate on empty history")
	}
	if len(goodMask) != h.Len() {
		return nil, fmt.Errorf("core: mask has %d entries for %d observations", len(goodMask), h.Len())
	}
	b, err := newSurrogateBuilder(h.Space(), cfg)
	if err != nil {
		return nil, err
	}
	for i, o := range h.Observations() {
		good := goodMask[i]
		b.goodMask = append(b.goodMask, good)
		b.count(o.Config, good, +1)
		if good {
			b.nGood++
		} else {
			b.nBad++
		}
	}
	b.n = h.Len()
	return b.assemble(h, math.NaN())
}

// Threshold returns y_τ, the good/bad split value.
func (s *Surrogate) Threshold() float64 { return s.threshold }

// GoodCount and BadCount report the partition sizes.
func (s *Surrogate) GoodCount() int { return s.nGood }

// BadCount reports the size of the bad partition.
func (s *Surrogate) BadCount() int { return s.nBad }

// Score returns the log expected-improvement score
// log pg(x) - log pb(x). The expected improvement of eq. 5 is a
// monotone function of pg/pb, so ranking by this score is equivalent
// to ranking by EI while staying numerically stable for many
// parameters.
func (s *Surrogate) Score(c space.Config) float64 {
	var score float64
	for i := range s.good {
		score += s.good[i].logProb(c[i]) - s.bad[i].logProb(c[i])
	}
	return score
}

// ScoreBatch computes Score for every row of the batch, accumulating
// into dst (dst[i] receives row i's score; len(dst) must equal
// b.Len()). Scores are accumulated per parameter column in the same
// dimension order and with the same paired subtraction as Score, so
// the results are bit-identical to calling Score row by row — only
// laid out so the discrete fast path is a contiguous table-lookup
// loop with no interface dispatch.
func (s *Surrogate) ScoreBatch(b *space.Batch, dst []float64) {
	if len(dst) != b.Len() {
		panic(fmt.Sprintf("core: ScoreBatch dst has %d slots for %d rows", len(dst), b.Len()))
	}
	for i := range dst {
		dst[i] = 0
	}
	for d := range s.good {
		col := b.Col(d)
		g, bad := s.good[d], s.bad[d]
		if gd, ok := g.(discreteDensity); ok {
			if bd, ok2 := bad.(discreteDensity); ok2 {
				gl, bl := gd.logP, bd.logP
				for i, x := range col {
					dst[i] += gl[int(x)] - bl[int(x)]
				}
				continue
			}
		}
		for i, x := range col {
			dst[i] += g.logProb(x) - bad.logProb(x)
		}
	}
}

// EI returns the expected improvement of eq. 5 up to the constant
// factor: 1 / (α + (pb/pg)(1-α)). Exposed for the Fig. 1 toy
// visualization; selection uses Score.
//
// Score can be ±Inf when a continuous density has zero mass at c
// (KDE underflow far from every kernel), and NaN when both densities
// underflow on different dimensions. Raw math.Exp would turn those
// into +Inf or NaN and poison downstream sums, so the score is
// clamped to the range where Exp is finite, and the no-signal NaN
// case maps to the neutral score 0.
func (s *Surrogate) EI(c space.Config) float64 {
	score := s.Score(c)
	if math.IsNaN(score) {
		// Zero mass under pg and pb alike: the model has no opinion.
		score = 0
	}
	// |score| <= 700 keeps Exp finite (Exp(709) overflows float64).
	if score > 700 {
		score = 700
	} else if score < -700 {
		score = -700
	}
	ratio := math.Exp(-score) // pb/pg
	return 1 / (s.alpha + ratio*(1-s.alpha))
}

// DensityAt returns pg and pb for a single parameter value, for
// plotting the Fig. 1 densities.
func (s *Surrogate) DensityAt(dim int, x float64) (pg, pb float64) {
	return math.Exp(s.good[dim].logProb(x)), math.Exp(s.bad[dim].logProb(x))
}

// SampleGood draws a configuration from the factorized good density
// pg(x) — the Proposal strategy's candidate generator (§III-D). For
// constrained spaces it retries until a valid configuration appears.
func (s *Surrogate) SampleGood(r *stats.RNG) space.Config {
	const maxTries = 10000
	for try := 0; try < maxTries; try++ {
		c := make(space.Config, len(s.good))
		for i, d := range s.good {
			c[i] = d.sample(r)
		}
		if s.sp.Valid(c) {
			return c
		}
	}
	// The good density concentrates on an invalid region; fall back to
	// a uniform valid sample rather than spinning forever.
	return s.sp.Sample(r)
}

// Importance returns the Jensen-Shannon divergence between pg and pb
// for every parameter (paper §VI, eqs. 13-14): the relative importance
// of each parameter in separating good from bad configurations.
func (s *Surrogate) Importance() []float64 {
	out := make([]float64, len(s.good))
	for i := range s.good {
		out[i] = stats.JSDivergence(s.good[i].probs(), s.bad[i].probs())
	}
	return out
}
