package baselines

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/space"
)

func table(t *testing.T) *dataset.Table {
	t.Helper()
	sp := space.New(space.DiscreteInts("p", 0, 1, 2, 3, 4, 5, 6, 7))
	configs := sp.Enumerate()
	values := make([]float64, len(configs))
	for i, c := range configs {
		values[i] = (c[0] - 5) * (c[0] - 5)
	}
	return dataset.MustNew("t", "v", sp, configs, values)
}

func TestRandomSelectsDistinct(t *testing.T) {
	tbl := table(t)
	h, err := Random(tbl, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 5 {
		t.Fatalf("len = %d", h.Len())
	}
	// History rejects duplicates, so reaching 5 proves distinctness.
}

func TestRandomFullBudget(t *testing.T) {
	tbl := table(t)
	h, err := Random(tbl, tbl.Len(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Best().Value != 0 {
		t.Fatalf("full random must find the optimum, got %v", h.Best().Value)
	}
}

func TestRandomDeterministic(t *testing.T) {
	tbl := table(t)
	h1, _ := Random(tbl, 4, 9)
	h2, _ := Random(tbl, 4, 9)
	for i := 0; i < 4; i++ {
		if h1.At(i).Value != h2.At(i).Value {
			t.Fatal("not deterministic")
		}
	}
	h3, _ := Random(tbl, 4, 10)
	same := true
	for i := 0; i < 4; i++ {
		if h1.At(i).Value != h3.At(i).Value {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestRandomValidation(t *testing.T) {
	tbl := table(t)
	if _, err := Random(tbl, 0, 1); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := Random(tbl, tbl.Len()+1, 1); err == nil {
		t.Error("budget beyond dataset accepted")
	}
}

func TestExhaustiveBest(t *testing.T) {
	tbl := table(t)
	best := ExhaustiveBest(tbl)
	if best.Value != 0 || best.Config[0] != 5 {
		t.Fatalf("best = %+v", best)
	}
}
