// Package baselines implements the non-model selection strategies the
// paper compares against (§V): uniform Random Selection, the
// Exhaustive Best oracle, and the per-application Expert choice.
package baselines

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Random selects budget configurations uniformly at random without
// replacement from the dataset and returns the evaluation history. It
// is a thin adapter over the registered "random" engine driven by the
// shared core.Tuner loop (a budget of 1 is drawn directly: the tuner
// loop needs at least 2 initial samples).
func Random(tbl *dataset.Table, budget int, seed uint64) (*core.History, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("baselines: budget must be positive, got %d", budget)
	}
	if budget > tbl.Len() {
		return nil, fmt.Errorf("baselines: budget %d exceeds dataset size %d", budget, tbl.Len())
	}
	if budget == 1 {
		r := stats.NewRNG(seed)
		h := core.NewHistory(tbl.Space)
		idx := r.Intn(tbl.Len())
		if err := h.Add(tbl.Config(idx), tbl.Value(idx)); err != nil {
			return nil, err
		}
		return h, nil
	}
	candidates := make([]space.Config, tbl.Len())
	for i := range candidates {
		candidates[i] = tbl.Config(i)
	}
	tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
		Engine:         "random",
		InitialSamples: 2,
		Seed:           seed,
		Candidates:     candidates,
	})
	if err != nil {
		return nil, err
	}
	if _, err := tn.Run(budget); err != nil {
		return nil, err
	}
	return tn.History(), nil
}

// ExhaustiveBest returns the dataset's global optimum — the flat
// reference line in Figs. 2a-6a.
func ExhaustiveBest(tbl *dataset.Table) core.Observation {
	_, c, v := tbl.Best()
	return core.Observation{Config: c, Value: v}
}
