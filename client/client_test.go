package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot"
	"github.com/hpcautotune/hiperbot/internal/server"
)

func newDaemon(t *testing.T) (*httptest.Server, *server.Store) {
	t.Helper()
	store, err := server.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(store, nil))
	t.Cleanup(func() { ts.Close(); store.Close() })
	return ts, store
}

func testSpace() *hiperbot.Space {
	return hiperbot.NewSpace(
		hiperbot.DiscreteInts("x", 0, 1, 2, 3),
		hiperbot.DiscreteInts("y", 0, 1, 2, 3),
	)
}

func TestClientEndToEndTune(t *testing.T) {
	ts, _ := newDaemon(t)
	cl, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	sp := testSpace()
	id, err := cl.CreateSessionFromSpace(ctx, "e2e", sp, SessionOptions{Seed: 1, InitialSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if id != "e2e" {
		t.Fatalf("id = %q", id)
	}

	evals := 0
	info, err := cl.Tune(ctx, id, func(cfg map[string]string) (float64, error) {
		c, err := sp.FromLabels(cfg)
		if err != nil {
			return 0, err
		}
		evals++
		return (c[0] - 2) * (c[0] - 2) * ((c[1] - 1) * (c[1] - 1)), nil
	}, 12, 3, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if info.Evaluations != 12 || evals != 12 {
		t.Fatalf("evaluations = %d (objective ran %d times), want 12", info.Evaluations, evals)
	}
	if info.Best == nil || info.Best.Value != 0 {
		t.Fatalf("best = %+v, want 0", info.Best)
	}

	sessions, err := cl.Sessions(ctx)
	if err != nil || len(sessions) != 1 {
		t.Fatalf("sessions = %v, %v", sessions, err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Endpoints["suggest"].Requests == 0 || m.Endpoints["observe"].Requests == 0 {
		t.Fatalf("metrics = %+v", m.Endpoints)
	}
	if err := cl.DeleteSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Status(ctx, id); !IsNotFound(err) {
		t.Fatalf("status after delete: %v, want 404", err)
	}
}

// TestClientTuneMetricsParetoFront drives a two-objective session
// through TuneMetrics and reads the Pareto front off the final status.
func TestClientTuneMetricsParetoFront(t *testing.T) {
	ts, _ := newDaemon(t)
	cl, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sp := testSpace()
	id, err := cl.CreateSessionFromSpace(ctx, "mo", sp, SessionOptions{
		Seed:           1,
		InitialSamples: 4,
		Objectives:     []string{"p95_latency_ms", "cost"},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := cl.TuneMetrics(ctx, id, func(cfg map[string]string) (float64, map[string]float64, error) {
		c, err := sp.FromLabels(cfg)
		if err != nil {
			return 0, nil, err
		}
		return 0, map[string]float64{
			"p95_latency_ms": c[0] + c[1],         // wants small x+y
			"cost":           (3 - c[0]) + c[1]*2, // wants large x, small y
		}, nil
	}, 12, 3, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != "motpe" {
		t.Fatalf("strategy = %q, want motpe", info.Strategy)
	}
	if len(info.ParetoFront) == 0 {
		t.Fatalf("no pareto front in final status: %+v", info)
	}
	for _, r := range info.ParetoFront {
		if len(r.Metrics) != 2 {
			t.Fatalf("front member missing metrics: %+v", r)
		}
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "temporarily overloaded", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "sessions": 0})
	}))
	defer ts.Close()

	cl, err := New(ts.URL, WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatalf("Health after transient 503s: %v", err)
	}
	if h.Status != "ok" || calls.Load() != 3 {
		t.Fatalf("status=%q calls=%d, want ok after 3 calls", h.Status, calls.Load())
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such session"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	cl, err := New(ts.URL, WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Status(context.Background(), "ghost")
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 was retried %d times", calls.Load())
	}
}

func TestClientRetryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	cl, err := New(ts.URL, WithRetries(100), WithBackoff(50*time.Millisecond, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cl.Health(ctx); err == nil {
		t.Fatal("Health succeeded against a dead server")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("retry loop ignored context cancellation (%v)", time.Since(start))
	}
}

func TestClientCancellationIsNotTransient(t *testing.T) {
	// A request aborted by the caller's context must surface
	// immediately: retrying a cancellation would strand the caller in
	// the backoff schedule they were trying to escape.
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-release
	}))
	defer func() { close(release); ts.Close() }()

	cl, err := New(ts.URL, WithRetries(100), WithBackoff(time.Second, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = cl.Health(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v — the retry loop treated it as transient", elapsed)
	}
	if calls.Load() != 1 {
		t.Fatalf("canceled request was retried %d times", calls.Load())
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("client: %w", context.Canceled), false},
		{&APIError{Status: http.StatusNotFound}, false},
		{&APIError{Status: http.StatusTooManyRequests}, true},
		{&APIError{Status: http.StatusInternalServerError}, true},
		{errors.New("connection refused"), true},
	}
	for _, tc := range cases {
		if got := transient(tc.err); got != tc.want {
			t.Errorf("transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestClientRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "localhost:8080"} {
		if _, err := New(bad); err == nil {
			t.Fatalf("New(%q) succeeded", bad)
		}
	}
}

// A redirect-mode cluster answers 307 with the owner's URL. The
// client must re-send the method AND body to the owner, cache the
// owner per session, and go direct on subsequent calls.
func TestClientFollowsRedirectsAndCachesOwner(t *testing.T) {
	owner, _ := newDaemon(t)
	var redirects atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		redirects.Add(1)
		w.Header().Set("Location", owner.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	cl, err := New(front.URL, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Create goes through the front (307) and must land on the owner
	// with its body intact.
	id, err := cl.CreateSessionFromSpace(ctx, "redir", testSpace(), SessionOptions{Seed: 1, InitialSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	sug, err := cl.Suggest(ctx, id, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(sug.Candidates) != 2 {
		t.Fatalf("got %d candidates, want 2", len(sug.Candidates))
	}
	results := make([]Result, len(sug.Candidates))
	for i, cfg := range sug.Candidates {
		results[i] = Result{Config: cfg, Value: float64(i)}
	}
	obs, err := cl.Observe(ctx, id, results)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Added != 2 {
		t.Fatalf("observe added %d, want 2 (redirect must re-send the body)", obs.Added)
	}
	// Session-scoped calls after the first redirect go straight to the
	// owner: create redirected once, the first suggest redirected once,
	// then the owner cache short-circuits observe and any later call.
	afterSuggest := redirects.Load()
	if _, err := cl.Status(ctx, id); err != nil {
		t.Fatal(err)
	}
	if got := redirects.Load(); got != afterSuggest {
		t.Fatalf("status hit the front %d more time(s); owner cache should have gone direct", got-afterSuggest)
	}
	if afterSuggest != 2 {
		t.Fatalf("front saw %d redirects before the cache warmed, want 2 (create + first suggest)", afterSuggest)
	}
}

// A redirect loop must fail with a hop-cap error, not hang.
func TestClientRedirectHopCap(t *testing.T) {
	var ts *httptest.Server
	ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", ts.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer ts.Close()
	cl, err := New(ts.URL, WithRetries(0), WithRedirects(3))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Status(context.Background(), "loop")
	if err == nil || !strings.Contains(err.Error(), "redirects") {
		t.Fatalf("err = %v, want redirect hop-cap error", err)
	}
}

// WithRedirects(0) surfaces the 307 as an APIError instead of
// following it.
func TestClientRedirectsDisabled(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", "http://example.invalid/")
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer ts.Close()
	cl, err := New(ts.URL, WithRetries(0), WithRedirects(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Status(context.Background(), "x")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTemporaryRedirect {
		t.Fatalf("err = %v, want APIError 307", err)
	}
}

// 429/503 with Retry-After must wait the server-directed delay, not
// the client's own (here: near-zero) backoff schedule.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","sessions":0}`)
	}))
	defer ts.Close()
	cl, err := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := cl.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry waited only %v; Retry-After: 1 should hold it ~1s", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

// Without Retry-After the configured backoff still applies — the
// header path must not slow down ordinary retries.
func TestClientRetryWithoutRetryAfterStaysFast(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","sessions":0}`)
	}))
	defer ts.Close()
	cl, err := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := cl.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("retry took %v; without Retry-After it should use the ~1ms backoff", elapsed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Fatalf("parseRetryAfter(7) = %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("parseRetryAfter(empty) = %v", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Fatalf("parseRetryAfter(-3) = %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Fatalf("parseRetryAfter(garbage) = %v", d)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 20*time.Second || d > 31*time.Second {
		t.Fatalf("parseRetryAfter(date +30s) = %v", d)
	}
}

func TestSessionIDFromPath(t *testing.T) {
	cases := map[string]string{
		"/v1/sessions/abc/suggest": "abc",
		"/v1/sessions/abc":         "abc",
		"/v1/sessions":             "",
		"/healthz":                 "",
	}
	for path, want := range cases {
		if got := sessionIDFromPath(path); got != want {
			t.Fatalf("sessionIDFromPath(%q) = %q, want %q", path, got, want)
		}
	}
}
