// Package client is the typed Go client for hiperbotd, the HiPerBOt
// tuning daemon (internal/server). It wraps the JSON API in Go
// methods, retries transient failures (network errors, 429, 5xx)
// with capped exponential backoff, and offers Tune, a one-call remote
// ask/tell loop.
//
//	cl, _ := client.New("http://localhost:8080")
//	id, _ := cl.CreateSessionFromSpace(ctx, "my-run", sp, client.SessionOptions{Seed: 1})
//	info, _ := cl.Tune(ctx, id, objective, 48, 4, time.Minute)
//	fmt.Println(info.Best.Config, info.Best.Value)
//
// Observe is idempotent server-side, and suggested candidates are
// leased with deadlines, so a worker that retries — or crashes and
// never reports — cannot corrupt or strand a session.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
)

// Wire types, re-exported so callers need only this package.
type (
	// SessionOptions configures a session (zero = paper defaults).
	SessionOptions = httpapi.SessionOptions
	// Result pairs a configuration (name→label map) with its value.
	Result = httpapi.Result
	// SessionInfo reports a session's progress.
	SessionInfo = httpapi.SessionInfo
	// SuggestResponse returns leased candidates.
	SuggestResponse = httpapi.SuggestResponse
	// RenewResponse reports which leases were extended.
	RenewResponse = httpapi.RenewResponse
	// ObserveResponse acknowledges reported results.
	ObserveResponse = httpapi.ObserveResponse
	// MetricsResponse is the daemon's /metrics payload.
	MetricsResponse = httpapi.MetricsResponse
	// ImportanceResponse is the per-parameter marginal report payload.
	ImportanceResponse = httpapi.ImportanceResponse
	// MarginalReport summarizes one parameter's fitted densities.
	MarginalReport = httpapi.MarginalReport
	// HealthResponse is the daemon's /healthz payload.
	HealthResponse = httpapi.HealthResponse
)

// APIError is a non-2xx response from the daemon.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After delay on 429/503
	// responses (zero when absent). The retry loop waits this long
	// instead of its own backoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("hiperbotd: HTTP %d: %s", e.Status, e.Message)
}

// IsNotFound reports whether err is a 404 APIError.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// Client talks to one hiperbotd instance — or to one node of a
// hiperbotd cluster: 307 redirects from a redirect-mode cluster are
// followed (method and body re-sent, capped hops) and the learned
// session→owner mapping is cached, so after the first hop every call
// on a session goes straight to the node that owns it.
type Client struct {
	base         string
	hc           *http.Client
	maxRetries   int
	backoff      time.Duration
	maxBackoff   time.Duration
	maxRedirects int

	// owners caches the base URL each session redirected to, keyed by
	// session id. Entries are dropped when the cached owner stops
	// answering, falling back to the configured base.
	ownerMu sync.RWMutex
	owners  map[string]string
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (default: 30 s timeout).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a transient failure is retried
// (default 4; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the initial and maximum retry backoff
// (default 100 ms doubling up to 3 s).
func WithBackoff(initial, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxBackoff = initial, max }
}

// WithRedirects caps how many 307/308 hops one request may follow
// (default 5; 0 disables redirect following, so a redirect-mode
// cluster response surfaces as an *APIError).
func WithRedirects(n int) Option { return func(c *Client) { c.maxRedirects = n } }

// New builds a client for the daemon at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		// Redirects are handled by the client itself (do's hop loop), not
		// by net/http: handling them here is what lets the owner of each
		// session be cached so later calls skip the extra hop. A client
		// substituted via WithHTTPClient keeps its own redirect policy.
		hc: &http.Client{
			Timeout:       30 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		},
		maxRetries:   4,
		backoff:      100 * time.Millisecond,
		maxBackoff:   3 * time.Second,
		maxRedirects: 5,
		owners:       make(map[string]string),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// ownerFor returns the cached owner base URL for a session id ("" if
// none).
func (c *Client) ownerFor(id string) string {
	c.ownerMu.RLock()
	defer c.ownerMu.RUnlock()
	return c.owners[id]
}

func (c *Client) setOwner(id, base string) {
	c.ownerMu.Lock()
	defer c.ownerMu.Unlock()
	c.owners[id] = base
}

func (c *Client) dropOwner(id string) {
	c.ownerMu.Lock()
	defer c.ownerMu.Unlock()
	delete(c.owners, id)
}

// sessionIDFromPath extracts the session id from a request path of
// the form /v1/sessions/{id}[/verb] ("" otherwise). The id is kept
// URL-escaped — it only keys the owner cache.
func sessionIDFromPath(path string) string {
	const prefix = "/v1/sessions/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	id := path[len(prefix):]
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	return id
}

// CreateSession creates a session from already-serialized Space JSON.
// name == "" lets the daemon pick an id.
func (c *Client) CreateSession(ctx context.Context, name string, spaceJSON []byte, opts SessionOptions) (string, error) {
	req := httpapi.CreateSessionRequest{Name: name, Space: spaceJSON, Options: opts}
	var resp httpapi.CreateSessionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// CreateSessionFromSpace is CreateSession for a json.Marshaler space
// (e.g. *hiperbot.Space). Remember that constraint predicates do not
// serialize: the daemon tunes the unconstrained space.
func (c *Client) CreateSessionFromSpace(ctx context.Context, name string, sp json.Marshaler, opts SessionOptions) (string, error) {
	data, err := sp.MarshalJSON()
	if err != nil {
		return "", fmt.Errorf("client: marshaling space: %w", err)
	}
	return c.CreateSession(ctx, name, data, opts)
}

// Suggest leases up to count candidates. lease bounds how long they
// stay reserved (0 uses the server default).
func (c *Client) Suggest(ctx context.Context, id string, count int, lease time.Duration) (*SuggestResponse, error) {
	req := httpapi.SuggestRequest{Count: count, LeaseSeconds: lease.Seconds()}
	var resp SuggestResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/suggest", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Renew extends the leases on candidates this worker still holds (as
// returned by Suggest), measured from now. RenewResponse.Lost lists
// configs whose leases had already expired — the candidates went back
// to the pool and may have been re-suggested, so the worker should
// abandon those evaluations. Long-running workers call this
// periodically (well under the lease duration) to keep their
// candidates fenced.
func (c *Client) Renew(ctx context.Context, id string, configs []map[string]string, lease time.Duration) (*RenewResponse, error) {
	req := httpapi.RenewRequest{Configs: configs, LeaseSeconds: lease.Seconds()}
	var resp RenewResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/renew", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Observe reports evaluated results; duplicates are idempotent.
func (c *Client) Observe(ctx context.Context, id string, results []Result) (*ObserveResponse, error) {
	var resp ObserveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/observe",
		httpapi.ObserveRequest{Results: results}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Status fetches a session's progress.
func (c *Client) Status(ctx context.Context, id string) (*SessionInfo, error) {
	var resp SessionInfo
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Importance fetches a session's per-parameter marginal reports,
// sorted by descending importance. The daemon answers 409 while the
// session is still in its initial phase (no fitted surrogate yet).
func (c *Client) Importance(ctx context.Context, id string) (*ImportanceResponse, error) {
	var resp ImportanceResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/importance", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sessions lists every live session.
func (c *Client) Sessions(ctx context.Context) ([]SessionInfo, error) {
	var resp httpapi.SessionListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// DeleteSession drops a session and its journal.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Health checks daemon liveness.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var resp HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the daemon's request counters and latency
// summaries.
func (c *Client) Metrics(ctx context.Context) (*MetricsResponse, error) {
	var resp MetricsResponse
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Objective evaluates one suggested configuration (a name→label map;
// parse it with Space.FromLabels when the space is known locally).
// Lower values are better.
type Objective func(config map[string]string) (float64, error)

// MetricObjective evaluates one suggested configuration and reports
// named metrics alongside the scalar value, for sessions created with
// SessionOptions.Objectives. The metrics map must contain every
// metric the session's objectives read; a nil map makes every
// objective fall back to value (the legacy contract).
type MetricObjective func(config map[string]string) (value float64, metrics map[string]float64, err error)

// Tune drives the whole remote ask/tell loop: lease up to batch
// candidates, evaluate them with obj, report the results, and repeat
// until the session holds budget evaluations or the space is
// exhausted. It returns the final session status.
func (c *Client) Tune(ctx context.Context, id string, obj Objective, budget, batch int, lease time.Duration) (*SessionInfo, error) {
	return c.TuneMetrics(ctx, id, func(cfg map[string]string) (float64, map[string]float64, error) {
		v, err := obj(cfg)
		return v, nil, err
	}, budget, batch, lease)
}

// TuneMetrics is Tune for multi-metric objectives: each evaluation
// reports its named metrics alongside the scalar value, so sessions
// created with SessionOptions.Objectives can derive their objective
// vectors (and, with two or more objectives, their Pareto front —
// read it from the returned SessionInfo.ParetoFront).
func (c *Client) TuneMetrics(ctx context.Context, id string, obj MetricObjective, budget, batch int, lease time.Duration) (*SessionInfo, error) {
	if batch < 1 {
		batch = 1
	}
	for {
		info, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if info.Evaluations >= budget {
			return info, nil
		}
		want := batch
		if rem := budget - info.Evaluations; want > rem {
			want = rem
		}
		sug, err := c.Suggest(ctx, id, want, lease)
		if err != nil {
			return nil, err
		}
		if len(sug.Candidates) == 0 {
			return c.Status(ctx, id) // pool exhausted
		}
		results := make([]Result, 0, len(sug.Candidates))
		for _, cfg := range sug.Candidates {
			v, metrics, err := obj(cfg)
			if err != nil {
				return nil, fmt.Errorf("client: objective: %w", err)
			}
			results = append(results, Result{Config: cfg, Value: v, Metrics: metrics})
		}
		if _, err := c.Observe(ctx, id, results); err != nil {
			return nil, err
		}
	}
}

// maxRetryAfter caps how long a server-directed Retry-After delay is
// honored, so a misconfigured daemon cannot park a worker for an hour.
const maxRetryAfter = time.Minute

// redirectError is once's internal signal that the daemon answered
// 307/308 with a Location — a redirect-mode cluster saying "this
// session lives over there". Handled inside do; never escapes to
// callers.
type redirectError struct{ target string }

func (e *redirectError) Error() string { return "client: redirected to " + e.target }

// do runs one JSON round-trip with retry on transient failures,
// following cluster redirects (method and body re-sent, hops capped
// by WithRedirects) and caching the learned session owner so later
// calls go direct.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	id := sessionIDFromPath(path)
	base := c.base
	if id != "" {
		if o := c.ownerFor(id); o != "" {
			base = o
		}
	}
	var lastErr error
	delay := c.backoff
	hops := 0
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, base+path, body, out)
		if err == nil {
			return nil
		}
		var rd *redirectError
		if errors.As(err, &rd) {
			if c.maxRedirects <= 0 {
				return &APIError{Status: http.StatusTemporaryRedirect, Message: rd.Error()}
			}
			hops++
			if hops > c.maxRedirects {
				return fmt.Errorf("client: %s %s: more than %d redirects (last to %s)", method, path, c.maxRedirects, rd.target)
			}
			// Following a redirect is progress, not failure: it consumes a
			// hop, never a retry, and waits for nothing.
			base = baseOf(rd.target, path)
			if id != "" {
				c.setOwner(id, base)
			}
			attempt--
			continue
		}
		lastErr = err
		if attempt >= c.maxRetries || !transient(err) {
			return lastErr
		}
		// A cached owner that stopped answering must not poison every
		// retry: fall back to the configured base, which still owns the
		// ring and can re-redirect to the session's new home.
		if base != c.base && id != "" {
			c.dropOwner(id)
			base = c.base
		}
		wait := delay
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			// The server said when to come back (429/503 Retry-After) —
			// honor that instead of guessing with exponential backoff.
			wait = min(ae.RetryAfter, maxRetryAfter)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
		delay *= 2
		if delay > c.maxBackoff {
			delay = c.maxBackoff
		}
	}
}

// baseOf strips path from the end of a redirect target, leaving the
// owner's base URL (scheme://host[/prefix]). Falls back to
// scheme://host when the target's path doesn't match ours.
func baseOf(target, path string) string {
	if b := strings.TrimSuffix(target, path); b != target {
		return strings.TrimRight(b, "/")
	}
	if u, err := url.Parse(target); err == nil && u.Host != "" {
		return u.Scheme + "://" + u.Host
	}
	return strings.TrimRight(target, "/")
}

// once performs a single HTTP exchange against an absolute URL.
func (c *Client) once(ctx context.Context, method, url string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect {
		if loc := resp.Header.Get("Location"); loc != "" {
			io.Copy(io.Discard, resp.Body)
			if u, perr := resp.Request.URL.Parse(loc); perr == nil {
				return &redirectError{target: u.String()}
			}
		}
	}
	if resp.StatusCode >= 400 {
		var apiErr httpapi.ErrorResponse
		msg := http.StatusText(resp.StatusCode)
		if data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); err == nil {
			if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
				msg = apiErr.Error
			}
		}
		return &APIError{
			Status:     resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// parseRetryAfter reads a Retry-After header: delta-seconds or an
// HTTP date. Zero when absent or malformed.
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// transient reports whether err is worth retrying: network-level
// failures and 429/5xx responses. Context cancellation and deadline
// expiry are never transient — the caller asked to stop, so the retry
// loop must return immediately instead of burning through the backoff
// schedule.
func transient(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	// Anything else that never produced an HTTP status is a transport
	// failure (refused connection, reset, timeout) — retryable.
	return true
}
