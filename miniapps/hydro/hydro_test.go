package hydro

import (
	"math"
	"testing"
)

func TestRunBasic(t *testing.T) {
	res, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyTotal <= 0 || math.IsNaN(res.EnergyTotal) {
		t.Fatalf("energy = %v", res.EnergyTotal)
	}
	if res.MaxPressure <= 0 {
		t.Fatalf("max pressure = %v", res.MaxPressure)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestWorkerCountIndependence(t *testing.T) {
	cfg := Config{NX: 32, NY: 32, Steps: 10, Tile: 8, Unroll: 2, Alloc: AllocPooled}
	var wantE, wantP float64
	for i, w := range []int{1, 2, 4, 9} {
		cfg.Workers = w
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wantE, wantP = res.EnergyTotal, res.MaxPressure
			continue
		}
		if res.EnergyTotal != wantE || res.MaxPressure != wantP {
			t.Fatalf("workers=%d: E=%v P=%v, want %v %v (bitwise)", w, res.EnergyTotal, res.MaxPressure, wantE, wantP)
		}
	}
}

// The unroll variants and tilings must compute identical physics.
func TestVariantsNumericallyIdentical(t *testing.T) {
	base := Config{NX: 40, NY: 40, Steps: 8, Tile: 0, Unroll: 1, Alloc: AllocPooled, Workers: 2}
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, unroll := range []int{2, 4} {
		for _, tile := range []int{0, 4, 16} {
			for _, alloc := range []Alloc{AllocPerStep, AllocPooled} {
				cfg := base
				cfg.Unroll = unroll
				cfg.Tile = tile
				cfg.Alloc = alloc
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.EnergyTotal != want.EnergyTotal {
					t.Fatalf("unroll=%d tile=%d alloc=%v: E=%v want %v",
						unroll, tile, alloc, res.EnergyTotal, want.EnergyTotal)
				}
			}
		}
	}
}

func TestEnergyConservedApproximately(t *testing.T) {
	cfg := Config{NX: 64, NY: 64, Steps: 30, Tile: 8, Unroll: 2, Alloc: AllocPooled}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Initial internal energy: hot region (NX/8+1)^2 elements at e=3.
	hot := float64((64/8 + 1) * (64/8 + 1) * 3)
	// The explicit scheme exchanges internal and kinetic energy; the
	// total internal energy must stay positive and bounded by the
	// initial value (work extraction only in expansion).
	if res.EnergyTotal <= 0 || res.EnergyTotal > hot*1.05 {
		t.Fatalf("energy %v escaped (0, %v]", res.EnergyTotal, hot*1.05)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NX: 2, NY: 32, Steps: 1, Unroll: 1},
		{NX: 32, NY: 32, Steps: 0, Unroll: 1},
		{NX: 32, NY: 32, Steps: 1, Unroll: 3},
		{NX: 32, NY: 32, Steps: 1, Unroll: 1, Tile: -1},
		{NX: 32, NY: 32, Steps: 1, Unroll: 1, Alloc: Alloc(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestAllocString(t *testing.T) {
	if AllocPerStep.String() != "per-step" || AllocPooled.String() != "pooled" {
		t.Fatal("String wrong")
	}
}
