// Package hydro implements a LULESH-flavored explicit shock-
// hydrodynamics time-step loop on a 2-D staggered mesh: a Lagrangian
// predictor (nodal velocity/position update from pressure gradients)
// and an element update (volume, artificial viscosity, equation of
// state). The tunable parameters mirror the spirit of the paper's
// LULESH study — loop tiling, manual unrolling variant, allocation
// strategy — plus the goroutine worker count; all genuinely change the
// measured wall time.
//
// The result is deterministic and independent of the worker count:
// phases are bulk-synchronous and each index is written by exactly one
// worker.
package hydro

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// Alloc selects the allocation strategy for scratch arrays.
type Alloc int

// Allocation strategies.
const (
	// AllocPerStep allocates scratch arrays every time step — the
	// "default allocator pressure" the paper's malloc flag addresses.
	AllocPerStep Alloc = iota
	// AllocPooled reuses preallocated scratch arrays.
	AllocPooled
)

// String implements fmt.Stringer.
func (a Alloc) String() string {
	switch a {
	case AllocPerStep:
		return "per-step"
	case AllocPooled:
		return "pooled"
	default:
		return fmt.Sprintf("Alloc(%d)", int(a))
	}
}

// Config sizes one run.
type Config struct {
	// NX, NY are element-grid dimensions.
	NX, NY int
	// Steps is the number of explicit time steps.
	Steps int
	// Tile is the row-block size for the element phase (0 = no tiling).
	Tile int
	// Unroll selects the manually unrolled inner-loop variant (1, 2, 4).
	Unroll int
	// Alloc selects the scratch allocation strategy.
	Alloc Alloc
	// Workers is the goroutine pool size (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns a small but measurable problem.
func DefaultConfig() Config {
	return Config{NX: 96, NY: 96, Steps: 20, Tile: 16, Unroll: 2, Alloc: AllocPooled}
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.NX < 4 || c.NY < 4 {
		return fmt.Errorf("hydro: grid %dx%d too small", c.NX, c.NY)
	}
	if c.Steps < 1 {
		return fmt.Errorf("hydro: Steps %d < 1", c.Steps)
	}
	if c.Tile < 0 {
		return fmt.Errorf("hydro: negative Tile")
	}
	switch c.Unroll {
	case 1, 2, 4:
	default:
		return fmt.Errorf("hydro: Unroll %d not in {1,2,4}", c.Unroll)
	}
	if c.Alloc != AllocPerStep && c.Alloc != AllocPooled {
		return fmt.Errorf("hydro: unknown alloc %d", int(c.Alloc))
	}
	return nil
}

// Result reports one run.
type Result struct {
	// EnergyTotal is the final total internal energy (deterministic).
	EnergyTotal float64
	// MaxPressure is the final maximum element pressure.
	MaxPressure float64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// state holds the mesh fields.
type state struct {
	nx, ny       int
	e, p, q, vol []float64 // element-centered
	vx, vy       []float64 // node-centered, (nx+1)x(ny+1)
}

// Run advances the hydro state for Steps time steps.
func Run(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ne := c.NX * c.NY
	nn := (c.NX + 1) * (c.NY + 1)
	s := &state{
		nx: c.NX, ny: c.NY,
		e: make([]float64, ne), p: make([]float64, ne),
		q: make([]float64, ne), vol: make([]float64, ne),
		vx: make([]float64, nn), vy: make([]float64, nn),
	}
	// Sedov-like initial condition: a hot corner region.
	for y := 0; y < c.NY/8+1; y++ {
		for x := 0; x < c.NX/8+1; x++ {
			s.e[y*c.NX+x] = 3.0
		}
	}
	for i := range s.vol {
		s.vol[i] = 1.0
	}

	var pool *scratch
	if c.Alloc == AllocPooled {
		pool = newScratch(ne)
	}

	start := time.Now()
	const dt = 1e-3
	for step := 0; step < c.Steps; step++ {
		scr := pool
		if scr == nil {
			scr = newScratch(ne) // per-step allocation pressure
		}
		eosPhase(s, c, workers)
		nodalPhase(s, dt, workers)
		elementPhase(s, scr, dt, c, workers)
	}
	var total, maxP float64
	for i := range s.e {
		total += s.e[i] * s.vol[i]
		if s.p[i] > maxP {
			maxP = s.p[i]
		}
	}
	return Result{EnergyTotal: total, MaxPressure: maxP, Elapsed: time.Since(start)}, nil
}

// scratch holds per-step temporary fields.
type scratch struct {
	divv, enew []float64
}

func newScratch(ne int) *scratch {
	return &scratch{divv: make([]float64, ne), enew: make([]float64, ne)}
}

// parallelBlocks distributes row blocks [lo, hi) over workers.
func parallelBlocks(rows, tile, workers int, body func(rlo, rhi int)) {
	if tile <= 0 || tile > rows {
		tile = rows
	}
	nblocks := (rows + tile - 1) / tile
	if workers > nblocks {
		workers = nblocks
	}
	if workers <= 1 {
		for b := 0; b < nblocks; b++ {
			lo := b * tile
			hi := lo + tile
			if hi > rows {
				hi = rows
			}
			body(lo, hi)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, nblocks)
	for b := 0; b < nblocks; b++ {
		next <- b
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				lo := b * tile
				hi := lo + tile
				if hi > rows {
					hi = rows
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// eosPhase computes pressure from energy: p = (γ-1) ρ e with an
// artificial-viscosity term, using the selected unroll variant.
func eosPhase(s *state, c Config, workers int) {
	const gamma = 1.4
	parallelBlocks(s.ny, c.Tile, workers, func(rlo, rhi int) {
		for y := rlo; y < rhi; y++ {
			row := y * s.nx
			switch c.Unroll {
			case 1:
				for x := 0; x < s.nx; x++ {
					i := row + x
					s.p[i] = (gamma - 1) * s.e[i] / s.vol[i]
				}
			case 2:
				x := 0
				for ; x+1 < s.nx; x += 2 {
					i := row + x
					s.p[i] = (gamma - 1) * s.e[i] / s.vol[i]
					s.p[i+1] = (gamma - 1) * s.e[i+1] / s.vol[i+1]
				}
				for ; x < s.nx; x++ {
					i := row + x
					s.p[i] = (gamma - 1) * s.e[i] / s.vol[i]
				}
			case 4:
				x := 0
				for ; x+3 < s.nx; x += 4 {
					i := row + x
					s.p[i] = (gamma - 1) * s.e[i] / s.vol[i]
					s.p[i+1] = (gamma - 1) * s.e[i+1] / s.vol[i+1]
					s.p[i+2] = (gamma - 1) * s.e[i+2] / s.vol[i+2]
					s.p[i+3] = (gamma - 1) * s.e[i+3] / s.vol[i+3]
				}
				for ; x < s.nx; x++ {
					i := row + x
					s.p[i] = (gamma - 1) * s.e[i] / s.vol[i]
				}
			}
		}
	})
}

// nodalPhase accelerates nodes by the pressure gradient of adjacent
// elements. Interior nodes only; each node is owned by one worker.
func nodalPhase(s *state, dt float64, workers int) {
	nxn := s.nx + 1
	parallelBlocks(s.ny-1, 0, workers, func(rlo, rhi int) {
		for yy := rlo; yy < rhi; yy++ {
			y := yy + 1 // interior node rows 1..ny-1
			for x := 1; x < s.nx; x++ {
				n := y*nxn + x
				// Pressure of the four elements around node (x, y).
				p00 := s.p[(y-1)*s.nx+(x-1)]
				p10 := s.p[(y-1)*s.nx+x]
				p01 := s.p[y*s.nx+(x-1)]
				p11 := s.p[y*s.nx+x]
				gx := (p10 + p11 - p00 - p01) * 0.5
				gy := (p01 + p11 - p00 - p10) * 0.5
				s.vx[n] -= dt * gx
				s.vy[n] -= dt * gy
			}
		}
	})
}

// elementPhase updates volumes and energies from nodal velocities
// (divergence) with an artificial viscosity on compression.
func elementPhase(s *state, scr *scratch, dt float64, c Config, workers int) {
	nxn := s.nx + 1
	parallelBlocks(s.ny, c.Tile, workers, func(rlo, rhi int) {
		for y := rlo; y < rhi; y++ {
			for x := 0; x < s.nx; x++ {
				i := y*s.nx + x
				n00 := y*nxn + x
				n10 := n00 + 1
				n01 := n00 + nxn
				n11 := n01 + 1
				div := (s.vx[n10] + s.vx[n11] - s.vx[n00] - s.vx[n01]) * 0.5
				div += (s.vy[n01] + s.vy[n11] - s.vy[n00] - s.vy[n10]) * 0.5
				scr.divv[i] = div
				q := 0.0
				if div < 0 {
					q = 1.5 * div * div // quadratic artificial viscosity
				}
				s.q[i] = q
				work := (s.p[i] + q) * div * dt
				scr.enew[i] = math.Max(0, s.e[i]-work)
			}
		}
	})
	parallelBlocks(s.ny, c.Tile, workers, func(rlo, rhi int) {
		for y := rlo; y < rhi; y++ {
			for x := 0; x < s.nx; x++ {
				i := y*s.nx + x
				s.e[i] = scr.enew[i]
				v := s.vol[i] * (1 + scr.divv[i]*dt)
				if v < 0.1 {
					v = 0.1
				}
				s.vol[i] = v
			}
		}
	})
}
