// Package chares simulates Charm++-style over-decomposition, the
// mechanism OpenAtom's performance hinges on (paper §IV-A): a
// computation is split into many more "chares" (migratable tasks) than
// workers, so a work-stealing scheduler can balance an imbalanced
// load — at the cost of per-chare scheduling overhead. Picking the
// grain size is exactly the sgrain tuning problem of the paper's
// OpenAtom study, and Run's wall time responds to it for real.
//
// The computed result (a fixed-order reduction over per-chare values)
// is deterministic and independent of the worker count and of the
// stealing schedule.
package chares

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// Config describes one execution.
type Config struct {
	// TotalWork is the number of abstract work units.
	TotalWork int
	// Grain is the work units per chare: chares = TotalWork / Grain.
	// Small grains balance better but pay scheduling overhead.
	Grain int
	// Imbalance skews the per-chare cost: 0 = uniform, 1 = the last
	// chares cost ~3x the first ones (a typical density-tail skew).
	Imbalance float64
	// OverheadNs models the constant per-chare scheduling cost in
	// artificial work-units (default 40).
	Overhead int
	// Workers is the goroutine pool size (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns a measurable default.
func DefaultConfig() Config {
	return Config{TotalWork: 1 << 20, Grain: 1 << 12, Imbalance: 0.7}
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.TotalWork < 1 {
		return fmt.Errorf("chares: TotalWork %d < 1", c.TotalWork)
	}
	if c.Grain < 1 || c.Grain > c.TotalWork {
		return fmt.Errorf("chares: Grain %d outside [1, %d]", c.Grain, c.TotalWork)
	}
	if c.Imbalance < 0 || c.Imbalance > 1 {
		return fmt.Errorf("chares: Imbalance %v outside [0,1]", c.Imbalance)
	}
	if c.Overhead < 0 {
		return fmt.Errorf("chares: negative Overhead")
	}
	return nil
}

// Result reports one execution.
type Result struct {
	// Chares is the number of tasks created.
	Chares int
	// Value is the deterministic reduction over all chare results.
	Value float64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
	// LoadImbalance is max worker busy-work / mean busy-work (1.0 =
	// perfectly balanced), measured in abstract work units.
	LoadImbalance float64
}

// Run executes the decomposed computation on a work-stealing pool.
func Run(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if c.Overhead == 0 {
		c.Overhead = 40
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nChares := (c.TotalWork + c.Grain - 1) / c.Grain

	// Per-chare work: a skewed profile. The actual numeric result is a
	// function only of the chare index, so any schedule yields the
	// same values.
	values := make([]float64, nChares)
	busy := make([]int64, workers)

	start := time.Now()
	var next int64
	var mu sync.Mutex
	takeChare := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(nChares) {
			return -1
		}
		id := int(next)
		next++
		return id
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				id := takeChare()
				if id < 0 {
					return
				}
				units := chareUnits(id, nChares, c)
				values[id] = burn(id, units)
				busy[w] += int64(units)
			}
		}(w)
	}
	wg.Wait()

	// Deterministic fixed-order reduction.
	var value float64
	for _, v := range values {
		value += v
	}
	var maxBusy, sumBusy int64
	for _, b := range busy {
		sumBusy += b
		if b > maxBusy {
			maxBusy = b
		}
	}
	imb := 1.0
	if sumBusy > 0 {
		imb = float64(maxBusy) * float64(workers) / float64(sumBusy)
	}
	return Result{
		Chares:        nChares,
		Value:         value,
		Elapsed:       time.Since(start),
		LoadImbalance: imb,
	}, nil
}

// SimulateImbalance deterministically list-schedules the chare costs
// onto Workers (each chare goes to the currently least-loaded worker,
// ties to the lowest index) and returns max load / mean load. Unlike
// Result.LoadImbalance — which reflects the actual goroutine schedule
// and therefore the machine — this is a pure function of the
// configuration, suitable for tests and for reasoning about grain
// sizes on any hardware.
func SimulateImbalance(c Config) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if c.Overhead == 0 {
		c.Overhead = 40
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nChares := (c.TotalWork + c.Grain - 1) / c.Grain
	load := make([]int64, workers)
	for id := 0; id < nChares; id++ {
		least := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[least] {
				least = w
			}
		}
		load[least] += int64(chareUnits(id, nChares, c))
	}
	var max, sum int64
	for _, l := range load {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1, nil
	}
	return float64(max) * float64(workers) / float64(sum), nil
}

// chareUnits returns the work units of chare id: the base grain plus a
// skewed tail, plus the constant scheduling overhead.
func chareUnits(id, nChares int, c Config) int {
	base := c.Grain
	if id == nChares-1 && c.TotalWork%c.Grain != 0 {
		base = c.TotalWork % c.Grain
	}
	// Imbalance: later chares carry up to 2*Imbalance extra weight.
	frac := float64(id) / float64(nChares)
	skew := 1 + 2*c.Imbalance*frac*frac
	return int(float64(base)*skew) + c.Overhead
}

// burn performs `units` of deterministic floating-point work whose
// result depends only on (id, units).
func burn(id, units int) float64 {
	x := 1.0 + float64(id%97)/97
	for i := 0; i < units; i++ {
		x = x + 1.0/(x+float64(i%13))
	}
	return math.Mod(x, 1000)
}
