package chares

import (
	"testing"
)

func TestRunBasic(t *testing.T) {
	res, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chares != (1<<20)/(1<<12) {
		t.Fatalf("chares = %d", res.Chares)
	}
	if res.Value == 0 {
		t.Fatal("zero reduction value")
	}
	if res.LoadImbalance < 1 {
		t.Fatalf("imbalance %v < 1", res.LoadImbalance)
	}
}

func TestWorkerAndScheduleIndependence(t *testing.T) {
	cfg := Config{TotalWork: 1 << 16, Grain: 1 << 9, Imbalance: 0.5}
	var want float64
	for i, w := range []int{1, 2, 4, 8} {
		cfg.Workers = w
		// Two runs per worker count: stealing order varies, the value
		// must not.
		for rep := 0; rep < 2; rep++ {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 && rep == 0 {
				want = res.Value
				continue
			}
			if res.Value != want {
				t.Fatalf("workers=%d rep=%d: value %v != %v", w, rep, res.Value, want)
			}
		}
	}
}

// Finer grains must improve the schedulable load balance when the
// per-chare cost is skewed — verified against the deterministic
// list-scheduling simulation (the measured LoadImbalance depends on
// the machine's real parallelism).
func TestFinerGrainBalancesBetter(t *testing.T) {
	coarse := Config{TotalWork: 1 << 18, Grain: 1 << 16, Imbalance: 1, Workers: 4}
	fine := coarse
	fine.Grain = 1 << 10
	ic, err := SimulateImbalance(coarse)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := SimulateImbalance(fine)
	if err != nil {
		t.Fatal(err)
	}
	// Coarse: 4 chares over 4 workers with 3x skew — max/mean well
	// above 1. Fine: 256 chares — near 1.
	if fi >= ic {
		t.Errorf("fine grain imbalance %.3f not below coarse %.3f", fi, ic)
	}
	if fi > 1.1 {
		t.Errorf("fine grain imbalance %.3f, want near 1", fi)
	}
	if ic < 1.2 {
		t.Errorf("coarse grain imbalance %.3f, want clearly above 1", ic)
	}
}

// Tiny grains pay a visible overhead tax: the simulated total work
// (including per-chare overhead) grows as the grain shrinks — the
// other side of the sgrain trade-off.
func TestSmallGrainOverheadGrows(t *testing.T) {
	total := func(grain int) int64 {
		c := Config{TotalWork: 1 << 16, Grain: grain, Imbalance: 0, Overhead: 40}
		n := (c.TotalWork + c.Grain - 1) / c.Grain
		var sum int64
		for id := 0; id < n; id++ {
			sum += int64(chareUnits(id, n, c))
		}
		return sum
	}
	if total(1<<6) <= total(1<<12) {
		t.Error("finer grain should carry more total overhead")
	}
}

func TestChareCountAndRemainder(t *testing.T) {
	cfg := Config{TotalWork: 1000, Grain: 300, Imbalance: 0}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chares != 4 { // 300+300+300+100
		t.Fatalf("chares = %d, want 4", res.Chares)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{TotalWork: 0, Grain: 1},
		{TotalWork: 10, Grain: 0},
		{TotalWork: 10, Grain: 11},
		{TotalWork: 10, Grain: 2, Imbalance: -0.1},
		{TotalWork: 10, Grain: 2, Imbalance: 1.1},
		{TotalWork: 10, Grain: 2, Overhead: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}
