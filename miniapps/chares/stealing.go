package chares

import (
	"sync"
	"time"
)

// Work-stealing execution: instead of the central queue Run uses, each
// worker owns a deque of chares (dealt round-robin); owners pop from
// the tail, and an idle worker steals from the head of the most-loaded
// victim. This is the Charm++-like scheduling the package models, and
// it exposes the same grain-size trade-off: coarse grains leave
// nothing to steal, tiny grains pay constant overhead per task.
//
// The computed Value is identical to Run's for the same Config —
// chare results depend only on (id, units), never on the schedule.

// deque is a mutex-guarded double-ended work queue of chare ids.
type deque struct {
	mu    sync.Mutex
	items []int
}

// popTail removes from the owner's end.
func (d *deque) popTail() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return 0, false
	}
	id := d.items[n-1]
	d.items = d.items[:n-1]
	return id, true
}

// stealHead removes from the opposite end.
func (d *deque) stealHead() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	id := d.items[0]
	d.items = d.items[1:]
	return id, true
}

// size reports the current length.
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

// RunStealing executes the decomposed computation with per-worker
// deques and work stealing.
func RunStealing(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if c.Overhead == 0 {
		c.Overhead = 40
	}
	workers := c.Workers
	if workers <= 0 {
		workers = 1
	}
	nChares := (c.TotalWork + c.Grain - 1) / c.Grain

	// Deal chares round-robin, mirroring a static initial placement.
	deques := make([]*deque, workers)
	for w := range deques {
		deques[w] = &deque{}
	}
	for id := 0; id < nChares; id++ {
		d := deques[id%workers]
		d.items = append(d.items, id)
	}

	values := make([]float64, nChares)
	busy := make([]int64, workers)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			my := deques[w]
			for {
				id, ok := my.popTail()
				if !ok {
					id, ok = stealFromVictim(deques, w)
					if !ok {
						return
					}
				}
				units := chareUnits(id, nChares, c)
				values[id] = burn(id, units)
				busy[w] += int64(units)
			}
		}(w)
	}
	wg.Wait()

	var value float64
	for _, v := range values {
		value += v
	}
	var maxBusy, sumBusy int64
	for _, b := range busy {
		sumBusy += b
		if b > maxBusy {
			maxBusy = b
		}
	}
	imb := 1.0
	if sumBusy > 0 {
		imb = float64(maxBusy) * float64(workers) / float64(sumBusy)
	}
	return Result{
		Chares:        nChares,
		Value:         value,
		Elapsed:       time.Since(start),
		LoadImbalance: imb,
	}, nil
}

// stealFromVictim takes one chare from the head of the most-loaded
// other deque, or reports failure when everything is drained.
func stealFromVictim(deques []*deque, self int) (int, bool) {
	for {
		victim, maxSize := -1, 0
		for i, d := range deques {
			if i == self {
				continue
			}
			if s := d.size(); s > maxSize {
				victim, maxSize = i, s
			}
		}
		if victim < 0 {
			return 0, false
		}
		if id, ok := deques[victim].stealHead(); ok {
			return id, true
		}
		// The victim drained between size check and steal; rescan.
	}
}
