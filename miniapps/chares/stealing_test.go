package chares

import "testing"

func TestStealingMatchesCentralValue(t *testing.T) {
	cfg := Config{TotalWork: 1 << 16, Grain: 1 << 9, Imbalance: 0.6, Workers: 4}
	central, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stealing, err := RunStealing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if central.Value != stealing.Value {
		t.Fatalf("schedulers disagree: %v vs %v", central.Value, stealing.Value)
	}
	if central.Chares != stealing.Chares {
		t.Fatalf("chare counts differ")
	}
}

func TestStealingDeterministicValue(t *testing.T) {
	cfg := Config{TotalWork: 1 << 15, Grain: 1 << 8, Imbalance: 1, Workers: 8}
	var want float64
	for rep := 0; rep < 3; rep++ {
		res, err := RunStealing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep == 0 {
			want = res.Value
			continue
		}
		if res.Value != want {
			t.Fatalf("rep %d: value %v != %v", rep, res.Value, want)
		}
	}
}

func TestStealingSingleWorker(t *testing.T) {
	cfg := Config{TotalWork: 1000, Grain: 100, Imbalance: 0.5, Workers: 1}
	res, err := RunStealing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chares != 10 || res.LoadImbalance != 1 {
		t.Fatalf("single worker: %+v", res)
	}
}

func TestStealingValidation(t *testing.T) {
	if _, err := RunStealing(Config{TotalWork: 0, Grain: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDequeOperations(t *testing.T) {
	d := &deque{items: []int{1, 2, 3}}
	if id, ok := d.popTail(); !ok || id != 3 {
		t.Fatalf("popTail = %d,%v", id, ok)
	}
	if id, ok := d.stealHead(); !ok || id != 1 {
		t.Fatalf("stealHead = %d,%v", id, ok)
	}
	if d.size() != 1 {
		t.Fatalf("size = %d", d.size())
	}
	d.popTail()
	if _, ok := d.popTail(); ok {
		t.Fatal("popTail on empty succeeded")
	}
	if _, ok := d.stealHead(); ok {
		t.Fatal("stealHead on empty succeeded")
	}
}
