// Package miniapps gathers runnable, genuinely parallel mini-kernels
// that serve as live objectives for the hiperbot tuner — the
// counterparts of the four applications the paper evaluates on:
//
//   - sweep: a KBA wavefront transport sweep (Kripke), in 2-D (Run)
//     and full 3-D with eight angular octants (Run3D); tunables are
//     the data-layout nesting order, group/direction set blocking, and
//     worker count.
//   - amg: a geometric-multigrid Poisson solver (HYPRE), as plain
//     V/W-cycles (Solve) and as multigrid-preconditioned conjugate
//     gradients (SolvePCG, the "AMG-PCG" the HYPRE study ranks best);
//     tunables are the smoother, sweeps, hierarchy depth, cycle shape,
//     and worker count.
//   - hydro: a LULESH-flavored explicit shock-hydro step loop;
//     tunables are loop tiling, manual unrolling variant, allocation
//     strategy, and worker count.
//   - chares: a Charm++-style over-decomposition scheduler (OpenAtom)
//     with both a central queue (Run) and per-worker work-stealing
//     deques (RunStealing); the tunable grain size trades load balance
//     against per-task overhead, and SimulateImbalance exposes the
//     trade-off as a deterministic function for tests.
//
// Every kernel guarantees that its numerical result is independent of
// the worker count (bitwise, enforced by tests), so tuning the
// parallelism never changes correctness — only the measured wall time.
// cmd/livetune tunes each kernel from the command line;
// examples/live_sweep shows the same loop through the public API.
package miniapps
