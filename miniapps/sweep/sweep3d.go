package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Run3D executes a full three-dimensional KBA sweep — the structure of
// the real Kripke. The angular directions split into eight octants by
// their sign pattern (±x, ±y, ±z); each octant sweeps the zone grid
// from its own corner, with upwind dependencies along all three axes.
// Zones on a wavefront plane i+j+k = const (in octant-local
// coordinates) are independent and are distributed over the worker
// pool.
//
// As in Run, the computed checksum is bitwise independent of the
// worker count: plane membership fixes the dependency order and the
// reduction order is deterministic.

// Config3D sizes a three-dimensional sweep.
type Config3D struct {
	// NX, NY, NZ are the zone-grid dimensions.
	NX, NY, NZ int
	// Groups and Directions are the totals; Directions must be
	// divisible by 8 (one batch per octant).
	Groups, Directions int
	// Gset blocks the groups (must divide Groups).
	Gset int
	// Nesting picks the inner loop order (as in Run).
	Nesting Nesting
	// Workers is the goroutine pool size (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig3D returns a small but non-trivial 3-D sweep.
func DefaultConfig3D() Config3D {
	return Config3D{NX: 16, NY: 16, NZ: 16, Groups: 8, Directions: 24, Gset: 2, Nesting: NestingGDZ}
}

// Validate checks structural constraints.
func (c Config3D) Validate() error {
	if c.NX <= 0 || c.NY <= 0 || c.NZ <= 0 || c.Groups <= 0 || c.Directions <= 0 {
		return fmt.Errorf("sweep: non-positive dimensions %+v", c)
	}
	if c.Directions%8 != 0 {
		return fmt.Errorf("sweep: Directions %d must be divisible by 8 octants", c.Directions)
	}
	if c.Gset <= 0 || c.Groups%c.Gset != 0 {
		return fmt.Errorf("sweep: Gset %d must divide Groups %d", c.Gset, c.Groups)
	}
	if c.Nesting < NestingGDZ || c.Nesting > NestingZGD {
		return fmt.Errorf("sweep: unknown nesting %d", int(c.Nesting))
	}
	return nil
}

// Result3D reports one 3-D sweep execution.
type Result3D struct {
	// Checksum is deterministic in the configuration (not Workers).
	Checksum float64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
	// ZoneUpdates counts zone×octant×gset updates performed.
	ZoneUpdates int
}

// octant describes one of the eight sweep directions.
type octant struct {
	sx, sy, sz int // +1 or -1 per axis
}

var octants = [8]octant{
	{+1, +1, +1}, {-1, +1, +1}, {+1, -1, +1}, {-1, -1, +1},
	{+1, +1, -1}, {-1, +1, -1}, {+1, -1, -1}, {-1, -1, -1},
}

// Run3D executes the sweep and returns the measurement.
func Run3D(c Config3D) (Result3D, error) {
	if err := c.Validate(); err != nil {
		return Result3D{}, err
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	groupsPer := c.Groups / c.Gset
	dirsPerOct := c.Directions / 8

	n := c.NX * c.NY * c.NZ
	psi := make([]float64, n)
	sigma := make([]float64, n)
	for i := range sigma {
		sigma[i] = 0.5 + 0.001*float64(i%89)
	}

	start := time.Now()
	var checksum float64
	updates := 0
	for gs := 0; gs < c.Gset; gs++ {
		for oi, oct := range octants {
			src := 1.0 + 0.01*float64(gs) + 0.005*float64(oi)
			sweepOctant(psi, sigma, c, oct, groupsPer, dirsPerOct, src, workers)
			// Deterministic fixed-order reduction per subsweep.
			for _, v := range psi {
				checksum += v
			}
			updates += n
		}
	}
	return Result3D{Checksum: checksum, Elapsed: time.Since(start), ZoneUpdates: updates}, nil
}

// sweepOctant walks wavefront planes d = i'+j'+k' in octant-local
// coordinates, parallelizing each plane over workers.
func sweepOctant(psi, sigma []float64, c Config3D, oct octant, groups, dirs int, src float64, workers int) {
	nx, ny, nz := c.NX, c.NY, c.NZ
	maxD := nx + ny + nz - 3
	for d := 0; d <= maxD; d++ {
		// Enumerate plane cells (i', j', k') with i'+j'+k' = d.
		type cell struct{ i, j, k int }
		var plane []cell
		iLo := 0
		if d-(ny-1)-(nz-1) > 0 {
			iLo = d - (ny - 1) - (nz - 1)
		}
		iHi := d
		if iHi > nx-1 {
			iHi = nx - 1
		}
		for ip := iLo; ip <= iHi; ip++ {
			rem := d - ip
			jLo := 0
			if rem-(nz-1) > 0 {
				jLo = rem - (nz - 1)
			}
			jHi := rem
			if jHi > ny-1 {
				jHi = ny - 1
			}
			for jp := jLo; jp <= jHi; jp++ {
				plane = append(plane, cell{ip, jp, rem - jp})
			}
		}
		if len(plane) == 0 {
			continue
		}
		w := workers
		if w > len(plane) {
			w = len(plane)
		}
		body := func(pc cell) {
			// Octant-local → global coordinates.
			x, y, z := pc.i, pc.j, pc.k
			if oct.sx < 0 {
				x = nx - 1 - x
			}
			if oct.sy < 0 {
				y = ny - 1 - y
			}
			if oct.sz < 0 {
				z = nz - 1 - z
			}
			updateZone3D(psi, sigma, c, oct, x, y, z, groups, dirs, src)
		}
		if w <= 1 {
			for _, pc := range plane {
				body(pc)
			}
			continue
		}
		var wg sync.WaitGroup
		chunk := (len(plane) + w - 1) / w
		for k := 0; k < w; k++ {
			lo := k * chunk
			hi := lo + chunk
			if hi > len(plane) {
				hi = len(plane)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(cells []cell) {
				defer wg.Done()
				for _, pc := range cells {
					body(pc)
				}
			}(plane[lo:hi])
		}
		wg.Wait()
	}
}

// updateZone3D performs the per-zone work with three upwind inflows.
func updateZone3D(psi, sigma []float64, c Config3D, oct octant, x, y, z, groups, dirs int, src float64) {
	nx, ny := c.NX, c.NY
	idx := (z*ny+y)*nx + x
	var inX, inY, inZ float64
	if ux := x - oct.sx; ux >= 0 && ux < nx {
		inX = psi[(z*ny+y)*nx+ux]
	}
	if uy := y - oct.sy; uy >= 0 && uy < ny {
		inY = psi[(z*ny+uy)*nx+x]
	}
	if uz := z - oct.sz; uz >= 0 && uz < c.NZ {
		inZ = psi[(uz*ny+y)*nx+x]
	}
	sig := sigma[idx]
	inflow := inX + inY + inZ

	var acc float64
	switch c.Nesting {
	case NestingGDZ:
		for g := 0; g < groups; g++ {
			wg := 1.0 + 0.01*float64(g)
			for dd := 0; dd < dirs; dd++ {
				mu := 0.25 + 0.5*float64(dd)/float64(dirs)
				acc += (src + mu*inflow) / (sig + mu*wg)
			}
		}
	case NestingDGZ:
		for dd := 0; dd < dirs; dd++ {
			mu := 0.25 + 0.5*float64(dd)/float64(dirs)
			for g := 0; g < groups; g++ {
				wg := 1.0 + 0.01*float64(g)
				acc += (src + mu*inflow) / (sig + mu*wg)
			}
		}
	case NestingZGD:
		total := groups * dirs
		stride := dirs + 1
		for gcd(stride, total) != 1 {
			stride++
		}
		for k, i := 0, 0; k < total; k, i = k+1, (i+stride)%total {
			g := i / dirs
			dd := i % dirs
			wg := 1.0 + 0.01*float64(g)
			mu := 0.25 + 0.5*float64(dd)/float64(dirs)
			acc += (src + mu*inflow) / (sig + mu*wg)
		}
	}
	psi[idx] = acc / float64(groups*dirs)
}
