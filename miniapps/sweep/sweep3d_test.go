package sweep

import (
	"math"
	"testing"
)

func TestRun3DBasic(t *testing.T) {
	res, err := Run3D(DefaultConfig3D())
	if err != nil {
		t.Fatal(err)
	}
	if res.ZoneUpdates != 16*16*16*8*2 {
		t.Fatalf("zone updates = %d", res.ZoneUpdates)
	}
	if res.Checksum == 0 || math.IsNaN(res.Checksum) {
		t.Fatalf("checksum = %v", res.Checksum)
	}
}

func TestRun3DWorkerCountIndependence(t *testing.T) {
	cfg := Config3D{NX: 10, NY: 8, NZ: 6, Groups: 4, Directions: 16, Gset: 2, Nesting: NestingDGZ}
	var want float64
	for i, w := range []int{1, 2, 3, 8} {
		cfg.Workers = w
		res, err := Run3D(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Checksum
			continue
		}
		if res.Checksum != want {
			t.Fatalf("workers=%d checksum %v != %v (bitwise)", w, res.Checksum, want)
		}
	}
}

// A cubic grid with symmetric physics must give every octant the same
// contribution: rotating the octant order cannot change the checksum
// because each subsweep writes the same field values. We verify the
// weaker but still telling property that all-positive and all-negative
// octant problems agree on a symmetric grid when run standalone.
func TestRun3DOctantSymmetry(t *testing.T) {
	// Uniform sigma removes spatial asymmetry.
	cfg := Config3D{NX: 6, NY: 6, NZ: 6, Groups: 2, Directions: 8, Gset: 1, Nesting: NestingGDZ}
	n := cfg.NX * cfg.NY * cfg.NZ
	run := func(oct octant) float64 {
		psi := make([]float64, n)
		sigma := make([]float64, n)
		for i := range sigma {
			sigma[i] = 0.7
		}
		sweepOctant(psi, sigma, cfg, oct, cfg.Groups, cfg.Directions/8, 1.0, 1)
		var sum float64
		for _, v := range psi {
			sum += v
		}
		return sum
	}
	a := run(octant{+1, +1, +1})
	b := run(octant{-1, -1, -1})
	if math.Abs(a-b)/math.Abs(a) > 1e-12 {
		t.Fatalf("mirror octants disagree on a symmetric problem: %v vs %v", a, b)
	}
}

func TestRun3DNestingOrdersAgree(t *testing.T) {
	cfg := Config3D{NX: 8, NY: 8, NZ: 8, Groups: 4, Directions: 16, Gset: 2}
	var ref float64
	for i, nest := range []Nesting{NestingGDZ, NestingDGZ, NestingZGD} {
		cfg.Nesting = nest
		res, err := Run3D(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Checksum
			continue
		}
		if rel := math.Abs(res.Checksum-ref) / math.Abs(ref); rel > 1e-9 {
			t.Fatalf("nesting %v deviates by %v", nest, rel)
		}
	}
}

func TestRun3DValidate(t *testing.T) {
	bad := []Config3D{
		{NX: 0, NY: 4, NZ: 4, Groups: 4, Directions: 8, Gset: 1},
		{NX: 4, NY: 4, NZ: 4, Groups: 4, Directions: 12, Gset: 1}, // 12 % 8 != 0
		{NX: 4, NY: 4, NZ: 4, Groups: 4, Directions: 8, Gset: 3},
		{NX: 4, NY: 4, NZ: 4, Groups: 4, Directions: 8, Gset: 1, Nesting: Nesting(7)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig3D().Validate(); err != nil {
		t.Error(err)
	}
}

// Wavefront plane enumeration must cover every zone exactly once per
// octant: the checksum after one octant equals a full-grid function.
func TestRun3DPlaneCoverage(t *testing.T) {
	cfg := Config3D{NX: 5, NY: 4, NZ: 3, Groups: 2, Directions: 8, Gset: 1, Nesting: NestingGDZ}
	n := cfg.NX * cfg.NY * cfg.NZ
	psi := make([]float64, n)
	sigma := make([]float64, n)
	for i := range sigma {
		sigma[i] = 1
	}
	sweepOctant(psi, sigma, cfg, octant{+1, +1, +1}, 2, 1, 1.0, 2)
	for i, v := range psi {
		if v == 0 {
			t.Fatalf("zone %d never updated", i)
		}
	}
}
