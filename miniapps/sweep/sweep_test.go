package sweep

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunBasic(t *testing.T) {
	res, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Zones != 48*48*4*4 {
		t.Fatalf("zones = %d", res.Zones)
	}
	if res.Checksum == 0 || math.IsNaN(res.Checksum) {
		t.Fatalf("checksum = %v", res.Checksum)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

// The headline invariant: the numerical result must not depend on the
// worker count — anti-diagonal zones are independent and the reduction
// order is fixed.
func TestWorkerCountIndependence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 24, 20
	var want float64
	for i, w := range []int{1, 2, 3, 7, 16} {
		cfg.Workers = w
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Checksum
			continue
		}
		if res.Checksum != want {
			t.Fatalf("workers=%d checksum %v != %v (bitwise)", w, res.Checksum, want)
		}
	}
}

// All nesting orders compute the same sum up to floating-point
// reassociation: the traversal changes, the arithmetic does not.
func TestNestingOrdersAgree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 16, 16
	var ref float64
	for i, n := range []Nesting{NestingGDZ, NestingDGZ, NestingZGD} {
		cfg.Nesting = n
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Checksum
			continue
		}
		if rel := math.Abs(res.Checksum-ref) / math.Abs(ref); rel > 1e-9 {
			t.Fatalf("nesting %v checksum deviates by %v", n, rel)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 4
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatal("repeated runs disagree")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NX: 0, NY: 4, Groups: 4, Directions: 4, Gset: 1, Dset: 1},
		{NX: 4, NY: 4, Groups: 4, Directions: 4, Gset: 3, Dset: 1}, // 3 does not divide 4
		{NX: 4, NY: 4, Groups: 4, Directions: 4, Gset: 1, Dset: 3},
		{NX: 4, NY: 4, Groups: 4, Directions: 4, Gset: 1, Dset: 1, Nesting: Nesting(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNestingString(t *testing.T) {
	if NestingGDZ.String() != "GDZ" || NestingZGD.String() != "ZGD" {
		t.Fatal("String wrong")
	}
}

// Property: set blocking must not change the total zone-update count.
func TestZoneCountInvariant(t *testing.T) {
	err := quick.Check(func(g8, d8 uint8) bool {
		gset := 1 << (g8 % 3) // 1, 2, 4
		dset := 1 << (d8 % 3)
		cfg := Config{NX: 8, NY: 8, Groups: 8, Directions: 8, Gset: gset, Dset: dset}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		return res.Zones == 8*8*gset*dset
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGCD(t *testing.T) {
	cases := [][3]int{{12, 8, 4}, {7, 5, 1}, {9, 3, 3}, {5, 0, 5}}
	for _, c := range cases {
		if gcd(c[0], c[1]) != c[2] {
			t.Fatalf("gcd(%d,%d) != %d", c[0], c[1], c[2])
		}
	}
}
