// Package sweep implements a Kripke-style deterministic transport
// sweep: a KBA (Koch-Baker-Alcouffe) wavefront over a 2-D zone grid,
// with energy groups and angular directions blocked into sets, a
// configurable data-layout nesting order, and a goroutine worker pool.
//
// It is the live-measurement counterpart of the analytic Kripke model:
// the same parameters the paper tunes (nesting order, group sets,
// direction sets, worker count) genuinely change the measured wall
// time of this kernel, so a hiperbot.Objective can wrap Run directly.
//
// The numerical result is independent of the worker count: zones on an
// anti-diagonal have no mutual dependencies, and the wavefront order
// fixes the reduction order.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Nesting selects the loop order of the innermost kernel, mirroring
// Kripke's data-layout parameter.
type Nesting int

// Loop orders: the letters name the innermost-to-outermost traversal
// of (G)roups, (D)irections, and (Z)ones within a zone's update.
const (
	NestingGDZ Nesting = iota // directions inner, groups outer
	NestingDGZ                // groups inner, directions outer
	NestingZGD                // strided zone-major access
)

// String implements fmt.Stringer.
func (n Nesting) String() string {
	switch n {
	case NestingGDZ:
		return "GDZ"
	case NestingDGZ:
		return "DGZ"
	case NestingZGD:
		return "ZGD"
	default:
		return fmt.Sprintf("Nesting(%d)", int(n))
	}
}

// Config sizes one sweep.
type Config struct {
	// NX, NY are the zone-grid dimensions.
	NX, NY int
	// Groups and Directions are the total energy/angle counts.
	Groups, Directions int
	// Gset and Dset are the blocking factors: Groups/Gset groups per
	// set, Directions/Dset directions per set. Both must divide evenly.
	Gset, Dset int
	// Nesting picks the inner loop order.
	Nesting Nesting
	// Workers is the goroutine pool size (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns a small but non-trivial sweep.
func DefaultConfig() Config {
	return Config{NX: 48, NY: 48, Groups: 16, Directions: 16, Gset: 4, Dset: 4, Nesting: NestingGDZ}
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.NX <= 0 || c.NY <= 0 || c.Groups <= 0 || c.Directions <= 0 {
		return fmt.Errorf("sweep: non-positive dimensions %+v", c)
	}
	if c.Gset <= 0 || c.Groups%c.Gset != 0 {
		return fmt.Errorf("sweep: Gset %d must divide Groups %d", c.Gset, c.Groups)
	}
	if c.Dset <= 0 || c.Directions%c.Dset != 0 {
		return fmt.Errorf("sweep: Dset %d must divide Directions %d", c.Dset, c.Directions)
	}
	if c.Nesting < NestingGDZ || c.Nesting > NestingZGD {
		return fmt.Errorf("sweep: unknown nesting %d", int(c.Nesting))
	}
	return nil
}

// Result reports one sweep execution.
type Result struct {
	// Checksum is a deterministic function of the configuration's
	// problem (not of Workers); used by tests to verify that
	// parallelization does not change the numerics.
	Checksum float64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
	// Zones is the number of zone updates performed.
	Zones int
}

// Run executes the sweep and returns the measurement.
func Run(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	groupsPer := c.Groups / c.Gset
	dirsPer := c.Directions / c.Dset

	// Angular flux for the currently processed set: psi[y*NX+x].
	// Incoming fluxes from the -x and -y faces.
	psi := make([]float64, c.NX*c.NY)
	sigma := make([]float64, c.NX*c.NY)
	for i := range sigma {
		sigma[i] = 0.5 + 0.001*float64(i%97)
	}

	start := time.Now()
	var checksum float64
	zones := 0

	// One subsweep per (group set, direction set): KBA pipelines these
	// in Kripke; here they run back to back, with the wavefront inside
	// each parallelized over anti-diagonals.
	for gs := 0; gs < c.Gset; gs++ {
		for ds := 0; ds < c.Dset; ds++ {
			src := 1.0 + float64(gs)*0.01 + float64(ds)*0.02
			sweepWavefront(psi, sigma, c.NX, c.NY, groupsPer, dirsPer, c.Nesting, src, workers)
			// Deterministic reduction: fixed traversal order.
			for _, v := range psi {
				checksum += v
			}
			zones += c.NX * c.NY
		}
	}
	return Result{Checksum: checksum, Elapsed: time.Since(start), Zones: zones}, nil
}

// sweepWavefront processes the grid in anti-diagonal wavefronts; zones
// on one diagonal are independent and are distributed over workers.
func sweepWavefront(psi, sigma []float64, nx, ny, groups, dirs int, nest Nesting, src float64, workers int) {
	for diag := 0; diag < nx+ny-1; diag++ {
		// Zones with x+y == diag.
		xlo := 0
		if diag >= ny {
			xlo = diag - ny + 1
		}
		xhi := diag
		if xhi >= nx {
			xhi = nx - 1
		}
		n := xhi - xlo + 1
		if n <= 0 {
			continue
		}
		w := workers
		if w > n {
			w = n
		}
		if w <= 1 {
			for x := xlo; x <= xhi; x++ {
				updateZone(psi, sigma, nx, x, diag-x, groups, dirs, nest, src)
			}
			continue
		}
		var wg sync.WaitGroup
		chunk := (n + w - 1) / w
		for k := 0; k < w; k++ {
			lo := xlo + k*chunk
			hi := lo + chunk - 1
			if hi > xhi {
				hi = xhi
			}
			if lo > hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for x := lo; x <= hi; x++ {
					updateZone(psi, sigma, nx, x, diag-x, groups, dirs, nest, src)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
}

// updateZone performs the per-zone group×direction work with the
// selected loop order. The arithmetic is identical across orders; only
// the traversal (and thus locality and loop overhead) differs.
func updateZone(psi, sigma []float64, nx, x, y, groups, dirs int, nest Nesting, src float64) {
	idx := y*nx + x
	var inX, inY float64
	if x > 0 {
		inX = psi[idx-1]
	}
	if y > 0 {
		inY = psi[idx-nx]
	}
	sig := sigma[idx]
	var acc float64
	switch nest {
	case NestingGDZ:
		for g := 0; g < groups; g++ {
			wg := 1.0 + 0.01*float64(g)
			for d := 0; d < dirs; d++ {
				mu := 0.3 + 0.4*float64(d)/float64(dirs)
				acc += (src + mu*(inX+inY)) / (sig + mu*wg)
			}
		}
	case NestingDGZ:
		for d := 0; d < dirs; d++ {
			mu := 0.3 + 0.4*float64(d)/float64(dirs)
			for g := 0; g < groups; g++ {
				wg := 1.0 + 0.01*float64(g)
				acc += (src + mu*(inX+inY)) / (sig + mu*wg)
			}
		}
	case NestingZGD:
		// Strided variant: walk the flattened (g, d) space with a
		// stride coprime to its size, visiting every pair exactly once
		// but in a scattered order that defeats sequential locality —
		// emulating a zone-major layout's accesses.
		total := groups * dirs
		stride := dirs + 1
		for gcd(stride, total) != 1 {
			stride++
		}
		for k, i := 0, 0; k < total; k, i = k+1, (i+stride)%total {
			g := i / dirs
			d := i % dirs
			wg := 1.0 + 0.01*float64(g)
			mu := 0.3 + 0.4*float64(d)/float64(dirs)
			acc += (src + mu*(inX+inY)) / (sig + mu*wg)
		}
	}
	psi[idx] = acc / float64(groups*dirs)
}

// gcd returns the greatest common divisor of a and b.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
