// Package amg implements a geometric-multigrid V-cycle solver for the
// 2-D Poisson problem — the live-measurement counterpart of the HYPRE
// new_ij model. The tunable parameters mirror the paper's HYPRE study:
// smoother choice, pre/post-smoothing sweeps, cycle shape (MU), and
// the goroutine worker count; each genuinely changes the measured
// time-to-solution, so a hiperbot.Objective can wrap Solve directly.
//
// The solver is deterministic for a fixed configuration: smoothing is
// Jacobi-style (old/new array pairs), so results are bitwise
// independent of the worker count.
package amg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// Smoother selects the relaxation scheme.
type Smoother int

// Available smoothers.
const (
	// Jacobi is damped point Jacobi (ω = 0.8).
	Jacobi Smoother = iota
	// RedBlackGS is red-black Gauss-Seidel: twice the convergence rate
	// per sweep at slightly more synchronization.
	RedBlackGS
)

// String implements fmt.Stringer.
func (s Smoother) String() string {
	switch s {
	case Jacobi:
		return "jacobi"
	case RedBlackGS:
		return "redblack-gs"
	default:
		return fmt.Sprintf("Smoother(%d)", int(s))
	}
}

// Config sizes one solve.
type Config struct {
	// N is the fine-grid dimension (N×N interior points). Vertex-
	// centered coarsening requires N+1 divisible by 2^(Levels-1)
	// (e.g. N = 2^k - 1: 31, 63, 127), so the level boundaries align.
	N int
	// Levels is the multigrid hierarchy depth (>= 1; 1 = smoothing only).
	Levels int
	// PreSweeps and PostSweeps count smoother applications per level.
	PreSweeps, PostSweeps int
	// Smoother selects the relaxation scheme.
	Smoother Smoother
	// MU is the cycle shape: 1 = V-cycle, 2 = W-cycle.
	MU int
	// Tol is the residual-reduction target (default 1e-8).
	Tol float64
	// MaxCycles bounds the outer iteration (default 60).
	MaxCycles int
	// Workers is the goroutine pool size (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns a medium-size V-cycle setup.
func DefaultConfig() Config {
	return Config{N: 127, Levels: 5, PreSweeps: 2, PostSweeps: 1, Smoother: RedBlackGS, MU: 1}
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.N < 4 {
		return fmt.Errorf("amg: N %d too small", c.N)
	}
	if c.Levels < 1 {
		return fmt.Errorf("amg: Levels %d < 1", c.Levels)
	}
	if (c.N+1)%(1<<(c.Levels-1)) != 0 || (c.N+1)>>(c.Levels-1) < 2 {
		return fmt.Errorf("amg: N %d does not support %d levels (need N+1 divisible by 2^(Levels-1))", c.N, c.Levels)
	}
	if c.PreSweeps < 0 || c.PostSweeps < 0 || c.PreSweeps+c.PostSweeps == 0 {
		return fmt.Errorf("amg: need at least one smoothing sweep")
	}
	if c.MU < 1 || c.MU > 2 {
		return fmt.Errorf("amg: MU %d outside {1,2}", c.MU)
	}
	if c.Smoother != Jacobi && c.Smoother != RedBlackGS {
		return fmt.Errorf("amg: unknown smoother %d", int(c.Smoother))
	}
	return nil
}

// Result reports one solve.
type Result struct {
	// Cycles is the number of multigrid cycles executed.
	Cycles int
	// ResidualReduction is ||r_final|| / ||r_0||.
	ResidualReduction float64
	// Converged reports whether Tol was reached within MaxCycles.
	Converged bool
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// grid is one level of the hierarchy: n×n interior points with a
// zero boundary halo, stored as (n+2)×(n+2).
type grid struct {
	n            int
	u, f, r, tmp []float64
	h2           float64 // mesh width squared
}

func newGrid(n int, h2 float64) *grid {
	size := (n + 2) * (n + 2)
	return &grid{n: n, u: make([]float64, size), f: make([]float64, size),
		r: make([]float64, size), tmp: make([]float64, size), h2: h2}
}

func (g *grid) idx(i, j int) int { return i*(g.n+2) + j }

// Solve runs multigrid cycles until the residual drops by Tol.
func Solve(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 60
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Build the hierarchy.
	grids := make([]*grid, c.Levels)
	n := c.N
	h := 1.0 / float64(c.N+1)
	for l := 0; l < c.Levels; l++ {
		grids[l] = newGrid(n, h*h)
		n = (n - 1) / 2 // vertex-centered: n_f = 2*n_c + 1
		h *= 2
	}
	fine := grids[0]
	// Right-hand side: a smooth source plus a point load.
	for i := 1; i <= fine.n; i++ {
		for j := 1; j <= fine.n; j++ {
			x := float64(i) / float64(fine.n+1)
			y := float64(j) / float64(fine.n+1)
			fine.f[fine.idx(i, j)] = math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y)
		}
	}
	fine.f[fine.idx(fine.n/2, fine.n/2)] += 10

	start := time.Now()
	r0 := residualNorm(fine, workers)
	if r0 == 0 {
		return Result{Converged: true, ResidualReduction: 0, Elapsed: time.Since(start)}, nil
	}
	res := Result{}
	for res.Cycles = 1; res.Cycles <= c.MaxCycles; res.Cycles++ {
		cycle(grids, 0, c, workers)
		rn := residualNorm(fine, workers)
		res.ResidualReduction = rn / r0
		if res.ResidualReduction <= c.Tol {
			res.Converged = true
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// cycle runs one MU-cycle starting at level l.
func cycle(grids []*grid, l int, c Config, workers int) {
	g := grids[l]
	if l == len(grids)-1 {
		// Coarsest level: smooth hard instead of a direct solve.
		for s := 0; s < 20; s++ {
			smooth(g, c.Smoother, workers)
		}
		return
	}
	for s := 0; s < c.PreSweeps; s++ {
		smooth(g, c.Smoother, workers)
	}
	computeResidual(g, workers)
	coarse := grids[l+1]
	restrict(g, coarse, workers)
	for mu := 0; mu < c.MU; mu++ {
		cycle(grids, l+1, c, workers)
	}
	prolongAdd(coarse, g, workers)
	for s := 0; s < c.PostSweeps; s++ {
		smooth(g, c.Smoother, workers)
	}
}

// parallelRows runs body(i) for interior rows i in [1, n] over workers.
func parallelRows(n, workers int, body func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 1; i <= n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := 1 + w*chunk
		hi := lo + chunk - 1
		if hi > n {
			hi = n
		}
		if lo > hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i <= hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// smooth applies one relaxation sweep.
func smooth(g *grid, s Smoother, workers int) {
	switch s {
	case Jacobi:
		const omega = 0.8
		parallelRows(g.n, workers, func(i int) {
			for j := 1; j <= g.n; j++ {
				k := g.idx(i, j)
				g.tmp[k] = (1-omega)*g.u[k] + omega*0.25*(g.u[k-1]+g.u[k+1]+g.u[k-(g.n+2)]+g.u[k+(g.n+2)]+g.h2*g.f[k])
			}
		})
		g.u, g.tmp = g.tmp, g.u
	case RedBlackGS:
		for color := 0; color < 2; color++ {
			parallelRows(g.n, workers, func(i int) {
				jStart := 1 + (i+color)%2
				for j := jStart; j <= g.n; j += 2 {
					k := g.idx(i, j)
					g.u[k] = 0.25 * (g.u[k-1] + g.u[k+1] + g.u[k-(g.n+2)] + g.u[k+(g.n+2)] + g.h2*g.f[k])
				}
			})
		}
	}
}

// computeResidual fills g.r = f - A u.
func computeResidual(g *grid, workers int) {
	parallelRows(g.n, workers, func(i int) {
		for j := 1; j <= g.n; j++ {
			k := g.idx(i, j)
			au := (4*g.u[k] - g.u[k-1] - g.u[k+1] - g.u[k-(g.n+2)] - g.u[k+(g.n+2)]) / g.h2
			g.r[k] = g.f[k] - au
		}
	})
}

// residualNorm returns ||f - A u||_2 with a deterministic reduction.
func residualNorm(g *grid, workers int) float64 {
	computeResidual(g, workers)
	var sum float64
	for i := 1; i <= g.n; i++ {
		for j := 1; j <= g.n; j++ {
			v := g.r[g.idx(i, j)]
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// restrict full-weights the fine residual onto the coarse RHS and
// zeros the coarse solution.
func restrict(fine, coarse *grid, workers int) {
	parallelRows(coarse.n, workers, func(I int) {
		i := 2 * I
		for J := 1; J <= coarse.n; J++ {
			j := 2 * J
			k := fine.idx(i, j)
			w := fine.r[k]*0.25 +
				(fine.r[k-1]+fine.r[k+1]+fine.r[k-(fine.n+2)]+fine.r[k+(fine.n+2)])*0.125 +
				(fine.r[k-(fine.n+2)-1]+fine.r[k-(fine.n+2)+1]+fine.r[k+(fine.n+2)-1]+fine.r[k+(fine.n+2)+1])*0.0625
			ck := coarse.idx(I, J)
			coarse.f[ck] = w
			coarse.u[ck] = 0
		}
	})
}

// prolongAdd bilinearly interpolates the coarse correction and adds it
// to the fine solution. Each worker owns disjoint fine rows: for fine
// row i, the stencil reads coarse rows only, so there are no write
// races.
func prolongAdd(coarse, fine *grid, workers int) {
	parallelRows(fine.n, workers, func(i int) {
		for j := 1; j <= fine.n; j++ {
			// Bilinear interpolation from the coarse grid.
			ci := i / 2
			cj := j / 2
			fi := float64(i)/2 - float64(ci)
			fj := float64(j)/2 - float64(cj)
			v := lerp2(coarse, ci, cj, fi, fj)
			fine.u[fine.idx(i, j)] += v
		}
	})
}

// lerp2 bilinearly samples the coarse solution with clamped indices.
func lerp2(g *grid, i, j int, fi, fj float64) float64 {
	get := func(a, b int) float64 {
		if a < 0 || b < 0 || a > g.n+1 || b > g.n+1 {
			return 0
		}
		return g.u[g.idx(a, b)]
	}
	v00 := get(i, j)
	v10 := get(i+1, j)
	v01 := get(i, j+1)
	v11 := get(i+1, j+1)
	return v00*(1-fi)*(1-fj) + v10*fi*(1-fj) + v01*(1-fi)*fj + v11*fi*fj
}
