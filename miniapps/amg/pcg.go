package amg

import (
	"math"
	"time"
)

// SolvePCG runs conjugate gradients preconditioned by one multigrid
// V-cycle per iteration — the "AMG-PCG" configuration the HYPRE study
// ranks best. Krylov acceleration smooths over multigrid's weak
// spots: on the modeled Poisson problem plain V-cycles already work,
// but PCG converges in fewer (and more robust) iterations per unit of
// smoothing work, which is exactly the trade the tunable parameters
// (smoother, sweeps, cycle shape) navigate.
//
// Like Solve, the result is bitwise independent of the worker count:
// all reductions run serially in a fixed order.

// PCGResult reports one preconditioned-CG solve.
type PCGResult struct {
	// Iterations is the number of PCG iterations performed.
	Iterations int
	// ResidualReduction is ||r_final|| / ||r_0||.
	ResidualReduction float64
	// Converged reports whether Tol was reached within MaxCycles
	// iterations.
	Converged bool
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// SolvePCG solves the same Poisson problem as Solve with multigrid-
// preconditioned conjugate gradients. The Config's multigrid fields
// describe the preconditioner; Tol and MaxCycles bound the outer PCG
// iteration.
func SolvePCG(c Config) (PCGResult, error) {
	if err := c.Validate(); err != nil {
		return PCGResult{}, err
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 60
	}
	workers := c.Workers
	if workers <= 0 {
		workers = 1
	}

	// Hierarchy for the preconditioner.
	grids := make([]*grid, c.Levels)
	n := c.N
	h := 1.0 / float64(c.N+1)
	for l := 0; l < c.Levels; l++ {
		grids[l] = newGrid(n, h*h)
		n = (n - 1) / 2
		h *= 2
	}
	fine := grids[0]
	stride := fine.n + 2

	// Problem: A x = b with the same RHS as Solve.
	size := stride * stride
	b := make([]float64, size)
	for i := 1; i <= fine.n; i++ {
		for j := 1; j <= fine.n; j++ {
			x := float64(i) / float64(fine.n+1)
			y := float64(j) / float64(fine.n+1)
			b[i*stride+j] = math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y)
		}
	}
	b[(fine.n/2)*stride+fine.n/2] += 10

	xv := make([]float64, size) // solution iterate
	r := make([]float64, size)  // residual
	z := make([]float64, size)  // preconditioned residual
	p := make([]float64, size)  // search direction
	ap := make([]float64, size) // A p
	copy(r, b)                  // x0 = 0 → r0 = b

	applyA := func(dst, src []float64) {
		h2 := fine.h2
		for i := 1; i <= fine.n; i++ {
			row := i * stride
			for j := 1; j <= fine.n; j++ {
				k := row + j
				dst[k] = (4*src[k] - src[k-1] - src[k+1] - src[k-stride] - src[k+stride]) / h2
			}
		}
	}
	dot := func(a, b []float64) float64 {
		var sum float64
		for i := 1; i <= fine.n; i++ {
			row := i * stride
			for j := 1; j <= fine.n; j++ {
				sum += a[row+j] * b[row+j]
			}
		}
		return sum
	}
	// precondition applies one V-cycle to M z = r (z := M⁻¹ r).
	precondition := func(z, r []float64) {
		copy(fine.f, r)
		for i := range fine.u {
			fine.u[i] = 0
		}
		cycle(grids, 0, c, workers)
		copy(z, fine.u)
	}

	start := time.Now()
	r0 := math.Sqrt(dot(r, r))
	res := PCGResult{}
	if r0 == 0 {
		res.Converged = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	precondition(z, r)
	copy(p, z)
	rz := dot(r, z)

	for res.Iterations = 1; res.Iterations <= c.MaxCycles; res.Iterations++ {
		applyA(ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			break // preconditioner lost positive definiteness numerically
		}
		alpha := rz / pap
		for i := range xv {
			xv[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rn := math.Sqrt(dot(r, r))
		res.ResidualReduction = rn / r0
		if res.ResidualReduction <= c.Tol {
			res.Converged = true
			break
		}
		precondition(z, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
