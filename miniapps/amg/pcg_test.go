package amg

import "testing"

func TestSolvePCGConverges(t *testing.T) {
	cfg := Config{N: 63, Levels: 4, PreSweeps: 1, PostSweeps: 1, Smoother: RedBlackGS, MU: 1, Tol: 1e-8}
	res, err := SolvePCG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("PCG did not converge: %.3g after %d iterations", res.ResidualReduction, res.Iterations)
	}
	if res.Iterations > 20 {
		t.Errorf("AMG-PCG needed %d iterations; expected < 20", res.Iterations)
	}
}

// The HYPRE study's premise: AMG-preconditioned CG needs no more
// cycles than plain V-cycle iteration at the same tolerance.
func TestPCGNoWorseThanPlainMultigrid(t *testing.T) {
	cfg := Config{N: 63, Levels: 4, PreSweeps: 1, PostSweeps: 1, Smoother: Jacobi, MU: 1, Tol: 1e-8}
	plain, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcg, err := SolvePCG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !pcg.Converged {
		t.Fatalf("convergence: plain=%v pcg=%v", plain.Converged, pcg.Converged)
	}
	if pcg.Iterations > plain.Cycles {
		t.Errorf("PCG (%d its) worse than plain V-cycles (%d)", pcg.Iterations, plain.Cycles)
	}
}

func TestPCGWorkerCountIndependence(t *testing.T) {
	cfg := Config{N: 31, Levels: 3, PreSweeps: 1, PostSweeps: 1, Smoother: RedBlackGS, MU: 1, Tol: 1e-7}
	var want float64
	var wantIts int
	for i, w := range []int{1, 2, 4} {
		cfg.Workers = w
		res, err := SolvePCG(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want, wantIts = res.ResidualReduction, res.Iterations
			continue
		}
		if res.ResidualReduction != want || res.Iterations != wantIts {
			t.Fatalf("workers=%d: %v/%d, want %v/%d (bitwise)", w, res.ResidualReduction, res.Iterations, want, wantIts)
		}
	}
}

func TestPCGRespectsIterationCap(t *testing.T) {
	cfg := Config{N: 31, Levels: 1, PreSweeps: 1, PostSweeps: 0, Smoother: Jacobi, MU: 1,
		Tol: 1e-14, MaxCycles: 3}
	res, err := SolvePCG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 4 {
		t.Fatalf("ran %d iterations, cap 3", res.Iterations)
	}
}

func TestPCGValidation(t *testing.T) {
	if _, err := SolvePCG(Config{N: 2, Levels: 1, PreSweeps: 1, MU: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
