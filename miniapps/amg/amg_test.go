package amg

import (
	"testing"
	"time"
)

func TestSolveConverges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 63
	cfg.Levels = 4
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: reduction %.3g after %d cycles", res.ResidualReduction, res.Cycles)
	}
	if res.Cycles > 30 {
		t.Errorf("multigrid needed %d cycles; expected fast convergence", res.Cycles)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestJacobiAlsoConvergesButSlower(t *testing.T) {
	base := Config{N: 63, Levels: 4, PreSweeps: 2, PostSweeps: 1, MU: 1, Tol: 1e-6}
	gs := base
	gs.Smoother = RedBlackGS
	ja := base
	ja.Smoother = Jacobi
	resGS, err := Solve(gs)
	if err != nil {
		t.Fatal(err)
	}
	resJA, err := Solve(ja)
	if err != nil {
		t.Fatal(err)
	}
	if !resGS.Converged || !resJA.Converged {
		t.Fatalf("convergence: GS=%v JA=%v", resGS.Converged, resJA.Converged)
	}
	if resJA.Cycles < resGS.Cycles {
		t.Errorf("Jacobi (%d cycles) should not beat red-black GS (%d)", resJA.Cycles, resGS.Cycles)
	}
}

func TestWorkerCountIndependence(t *testing.T) {
	cfg := Config{N: 31, Levels: 3, PreSweeps: 1, PostSweeps: 1, Smoother: RedBlackGS, MU: 1, Tol: 1e-6}
	var want float64
	var wantCycles int
	for i, w := range []int{1, 2, 5, 8} {
		cfg.Workers = w
		res, err := Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want, wantCycles = res.ResidualReduction, res.Cycles
			continue
		}
		if res.ResidualReduction != want || res.Cycles != wantCycles {
			t.Fatalf("workers=%d: reduction %v/%d cycles, want %v/%d (bitwise)",
				w, res.ResidualReduction, res.Cycles, want, wantCycles)
		}
	}
}

func TestWCycleConvergesFasterPerCycle(t *testing.T) {
	v := Config{N: 63, Levels: 4, PreSweeps: 1, PostSweeps: 1, Smoother: Jacobi, MU: 1, Tol: 1e-7}
	w := v
	w.MU = 2
	resV, err := Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	resW, err := Solve(w)
	if err != nil {
		t.Fatal(err)
	}
	if resW.Cycles > resV.Cycles {
		t.Errorf("W-cycle (%d cycles) should need no more cycles than V-cycle (%d)", resW.Cycles, resV.Cycles)
	}
}

func TestMoreLevelsHelp(t *testing.T) {
	shallow := Config{N: 63, Levels: 1, PreSweeps: 2, PostSweeps: 1, Smoother: RedBlackGS, MU: 1, Tol: 1e-6, MaxCycles: 40}
	deep := shallow
	deep.Levels = 4
	resS, err := Solve(shallow)
	if err != nil {
		t.Fatal(err)
	}
	resD, err := Solve(deep)
	if err != nil {
		t.Fatal(err)
	}
	if !resD.Converged {
		t.Fatal("deep hierarchy did not converge")
	}
	// Pure smoothing on a 64x64 Poisson problem cannot reach 1e-6 in
	// 40 cycles; the hierarchy is what makes it fast.
	if resS.Converged && resS.Cycles <= resD.Cycles {
		t.Errorf("smoothing-only (%d cycles) should not match multigrid (%d)", resS.Cycles, resD.Cycles)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{N: 2, Levels: 1, PreSweeps: 1, MU: 1},
		{N: 63, Levels: 0, PreSweeps: 1, MU: 1},
		{N: 64, Levels: 4, PreSweeps: 1, MU: 1}, // 65 not divisible by 8
		{N: 63, Levels: 4, PreSweeps: 0, PostSweeps: 0, MU: 1},
		{N: 63, Levels: 4, PreSweeps: 1, MU: 3},
		{N: 63, Levels: 4, PreSweeps: 1, MU: 1, Smoother: Smoother(5)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestSolveRespectsMaxCycles(t *testing.T) {
	cfg := Config{N: 31, Levels: 1, PreSweeps: 1, PostSweeps: 0, Smoother: Jacobi, MU: 1,
		Tol: 1e-14, MaxCycles: 3}
	start := time.Now()
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("cannot converge to 1e-14 in 3 smoothing cycles")
	}
	if res.Cycles > 4 {
		t.Errorf("ran %d cycles, budget 3", res.Cycles)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("MaxCycles did not bound the run")
	}
}

func TestSmootherString(t *testing.T) {
	if Jacobi.String() != "jacobi" || RedBlackGS.String() != "redblack-gs" {
		t.Fatal("String wrong")
	}
}
