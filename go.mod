module github.com/hpcautotune/hiperbot

go 1.24
