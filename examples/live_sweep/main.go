// Live tuning: HiPerBOt drives a real parallel kernel — the KBA-style
// transport sweep from miniapps/sweep — and minimizes its *measured*
// wall time. This is the workflow the paper targets: the objective is
// an actual execution, not a table lookup, so every evaluation costs
// real time and the tuner's sample efficiency matters.
//
// Because wall-clock measurements are noisy, each configuration is
// measured multiple times (the median is returned), and the final
// winner is re-validated against the worst configuration found.
//
//	go run ./examples/live_sweep
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	hiperbot "github.com/hpcautotune/hiperbot"
	"github.com/hpcautotune/hiperbot/miniapps/sweep"
)

func main() {
	sp := hiperbot.NewSpace(
		hiperbot.Discrete("nesting", "GDZ", "DGZ", "ZGD"),
		hiperbot.DiscreteInts("gset", 1, 2, 4, 8),
		hiperbot.DiscreteInts("dset", 1, 2, 4, 8),
		hiperbot.DiscreteInts("workers", 1, 2, 4, 8),
	)

	evals := 0
	objective := func(c hiperbot.Config) float64 {
		evals++
		cfg := sweep.Config{
			NX: 64, NY: 64, Groups: 16, Directions: 16,
			Gset:    []int{1, 2, 4, 8}[int(c[1])],
			Dset:    []int{1, 2, 4, 8}[int(c[2])],
			Nesting: []sweep.Nesting{sweep.NestingGDZ, sweep.NestingDGZ, sweep.NestingZGD}[int(c[0])],
			Workers: []int{1, 2, 4, 8}[int(c[3])],
		}
		return medianSeconds(cfg, 3)
	}

	start := time.Now()
	tuner, err := hiperbot.NewTuner(sp, objective, hiperbot.Options{
		InitialSamples: 12,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	best, err := tuner.Run(48) // of 192 possible configurations
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tuned a live kernel in %v (%d measured configurations of %d possible)\n",
		time.Since(start).Round(time.Millisecond), evals, 192)
	fmt.Printf("fastest: %s → %.2f ms/sweep\n", sp.Describe(best.Config), best.Value*1e3)

	// Show the spread the tuner had to navigate.
	hist := tuner.History()
	worst := hist.At(0)
	for i := 1; i < hist.Len(); i++ {
		if hist.At(i).Value > worst.Value {
			worst = hist.At(i)
		}
	}
	fmt.Printf("slowest seen: %s → %.2f ms/sweep (%.1fx slower)\n",
		sp.Describe(worst.Config), worst.Value*1e3, worst.Value/best.Value)
}

// medianSeconds runs the sweep reps times and returns the median
// elapsed seconds — basic noise control for wall-clock objectives.
func medianSeconds(cfg sweep.Config, reps int) float64 {
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		res, err := sweep.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		times = append(times, res.Elapsed.Seconds())
	}
	sort.Float64s(times)
	return times[len(times)/2]
}
