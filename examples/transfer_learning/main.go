// Transfer learning: tune a large-scale "target" application using a
// prior built from plentiful small-scale "source" measurements
// (paper §III-E, §VII).
//
// The source domain is cheap to sample (here: 300 evaluations of a
// small-problem model); the target domain is expensive, so we allow
// only 30 target evaluations. The prior carries the source's good/bad
// densities into the target surrogate (eqs. 9-10), letting the tuner
// skip most of the exploration a cold start would need.
//
//	go run ./examples/transfer_learning
package main

import (
	"fmt"
	"log"
	"math"

	hiperbot "github.com/hpcautotune/hiperbot"
)

// appModel is a configurable solver whose best settings are mostly
// scale-invariant: decomposition and solver choice carry over from
// small to large runs, which is exactly when transfer learning pays.
func appModel(c hiperbot.Config, scale float64) float64 {
	ranks := []float64{1, 2, 4, 8, 16, 32}[int(c[0])]
	solver := int(c[1]) // 0 amg-pcg (best), 1 amg-gmres, 2 jacobi-pcg
	tiles := []float64{8, 16, 32, 64}[int(c[2])]

	pen := 0.30 * math.Abs(math.Log2(ranks/16))
	pen += []float64{0, 0.08, 0.45}[solver]
	pen += 0.10 * math.Abs(math.Log2(tiles/32))
	return scale * (1 + pen)
}

func main() {
	sp := hiperbot.NewSpace(
		hiperbot.DiscreteInts("ranks", 1, 2, 4, 8, 16, 32),
		hiperbot.Discrete("solver", "amg-pcg", "amg-gmres", "jacobi-pcg"),
		hiperbot.DiscreteInts("tiles", 8, 16, 32, 64),
	)

	// Phase 1: cheap source-domain study (small problem, scale 1).
	srcEvals := 0
	source := func(c hiperbot.Config) float64 {
		srcEvals++
		return appModel(c, 1.0)
	}
	srcTuner, err := hiperbot.NewTuner(sp, source, hiperbot.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// The source space has only 72 configurations; study most of it.
	if _, err := srcTuner.Run(60); err != nil {
		log.Fatal(err)
	}
	prior, err := hiperbot.NewPrior(srcTuner.History(), hiperbot.SurrogateConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source study: %d cheap evaluations\n", srcEvals)

	// Phase 2: expensive target domain (scale 40) with and without
	// the prior, at a tight 7-evaluation budget, averaged over seeds
	// (a single run of either can get lucky).
	runTarget := func(withPrior bool, seed uint64) float64 {
		target := func(c hiperbot.Config) float64 {
			return appModel(c, 40.0) // pretend each run takes hours
		}
		opts := hiperbot.Options{InitialSamples: 3, Seed: seed}
		if withPrior {
			opts.Surrogate = hiperbot.SurrogateConfig{Prior: prior, PriorWeight: 2}
		}
		tn, err := hiperbot.NewTuner(sp, target, opts)
		if err != nil {
			log.Fatal(err)
		}
		best, err := tn.Run(7)
		if err != nil {
			log.Fatal(err)
		}
		return best.Value
	}

	const seeds = 20
	var with, without float64
	for seed := uint64(0); seed < seeds; seed++ {
		with += runTarget(true, seed)
		without += runTarget(false, seed)
	}
	with /= seeds
	without /= seeds
	fmt.Printf("7 expensive target runs each, averaged over %d seeds:\n", seeds)
	fmt.Printf("  with source prior: best %.2f s\n", with)
	fmt.Printf("  cold start:        best %.2f s\n", without)
	optimum := appModel(hiperbot.Config{4, 0, 2}, 40.0)
	fmt.Printf("  (target optimum:   %.2f s)\n", optimum)
	if with < without {
		fmt.Println("→ the source prior consistently finds better target configurations")
	}
}
