// Parameter importance: rank compiler flags by how much they matter,
// from existing measurement data — no additional runs (paper §VI).
//
// Given a CSV of past build-and-benchmark results, HiPerBOt's
// surrogate splits the observations into good and bad at the
// α-quantile and measures, per parameter, the Jensen-Shannon
// divergence between the two value distributions. Parameters whose
// good values differ sharply from their bad values are the ones worth
// tuning first.
//
//	go run ./examples/parameter_importance
package main

import (
	"fmt"
	"log"
	"strings"

	hiperbot "github.com/hpcautotune/hiperbot"
)

// measurements is a small flag-tuning study of a fictional kernel:
// the vectorizer flag dominates, the allocator matters some, and the
// debug-symbols flag is pure noise.
const measurements = `vectorize,allocator,symbols,runtime
on,system,off,2.11
on,system,on,2.13
on,pool,off,1.62
on,pool,on,1.64
on,arena,off,1.71
on,arena,on,1.70
off,system,off,3.42
off,system,on,3.45
off,pool,off,2.95
off,pool,on,2.97
off,arena,off,3.05
off,arena,on,3.02
`

func main() {
	sp := hiperbot.NewSpace(
		hiperbot.Discrete("vectorize", "on", "off"),
		hiperbot.Discrete("allocator", "system", "pool", "arena"),
		hiperbot.Discrete("symbols", "off", "on"),
	)
	tbl, err := hiperbot.LoadDataset("flag-study", sp, strings.NewReader(measurements))
	if err != nil {
		log.Fatal(err)
	}

	// Fold every measurement into a history: importance analysis can
	// use all the data (the "actual ranking" column of the paper's
	// Table I).
	h := hiperbot.NewHistory(sp)
	for i := 0; i < tbl.Len(); i++ {
		h.MustAdd(tbl.Config(i), tbl.Value(i))
	}

	names, scores, err := hiperbot.Importance(h, hiperbot.SurrogateConfig{Quantile: 0.25})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("parameter importance (JS divergence, higher = more impact):")
	for i := range names {
		bar := strings.Repeat("#", int(scores[i]*60))
		fmt.Printf("  %-10s %.4f  %s\n", names[i], scores[i], bar)
	}

	_, cfg, best := tbl.Best()
	fmt.Printf("\nbest measured configuration: %s (%.2f s)\n", sp.Describe(cfg), best)
}
