// Batch tuning: drive HiPerBOt the way a cluster allocation does —
// ask the model for a batch of candidates, run them "concurrently",
// fold the results back in, repeat. Uses the asynchronous
// SelectBatch/Observe API so the evaluation loop stays under the
// caller's control (job scheduler, goroutines, MPI launcher, ...).
//
//	go run ./examples/batch_cluster
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	hiperbot "github.com/hpcautotune/hiperbot"
)

// jobCost models a solver run: decomposition sweet spot plus a solver
// penalty; each "job" takes real wall time on a cluster, which is why
// we evaluate four at a time.
func jobCost(c hiperbot.Config) float64 {
	nodes := []float64{1, 2, 4, 8, 16, 32, 64}[int(c[0])]
	solver := int(c[1])
	tile := []float64{4, 8, 16, 32, 64}[int(c[2])]
	pen := 0.35*math.Abs(math.Log2(nodes/16)) +
		[]float64{0, 0.06, 0.3}[solver] +
		0.12*math.Abs(math.Log2(tile/16))
	return 25 * (1 + pen)
}

func main() {
	sp := hiperbot.NewSpace(
		hiperbot.DiscreteInts("nodes", 1, 2, 4, 8, 16, 32, 64),
		hiperbot.Discrete("solver", "amg", "amg-agg", "ilu"),
		hiperbot.DiscreteInts("tile", 4, 8, 16, 32, 64),
	)
	tuner, err := hiperbot.NewTuner(sp, jobCost, hiperbot.Options{
		InitialSamples: 8,
		Seed:           11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Initial random samples (these could also run as one batch).
	for tuner.Evaluations() < 8 {
		if _, err := tuner.Step(); err != nil {
			log.Fatal(err)
		}
	}

	const batchSize = 4
	round := 0
	for tuner.Evaluations() < 32 {
		batch, err := tuner.SelectBatch(batchSize)
		if err != nil {
			log.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		round++

		// "Submit" the batch: evaluate concurrently, then report back.
		type result struct {
			cfg   hiperbot.Config
			value float64
		}
		results := make([]result, len(batch))
		var wg sync.WaitGroup
		for i, cfg := range batch {
			wg.Add(1)
			go func(i int, cfg hiperbot.Config) {
				defer wg.Done()
				results[i] = result{cfg: cfg, value: jobCost(cfg)}
			}(i, cfg)
		}
		wg.Wait()
		for _, r := range results {
			if err := tuner.Observe(r.cfg, r.value); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("round %d: %d jobs, best so far %.2f s\n", round, len(batch), tuner.Best().Value)
	}

	best := tuner.Best()
	fmt.Printf("\nbest after %d runs in %d batched rounds: %s → %.2f s\n",
		tuner.Evaluations(), round, sp.Describe(best.Config), best.Value)
}
