// Remote tuning end-to-end: a hiperbotd daemon, a typed client, and
// a real measured objective — the miniapps/chares load-balancing
// kernel — all in one process. The worker leases candidate
// configurations over HTTP, measures them by wall time, and reports
// the results back; the daemon journals every evaluation and serves
// live progress and request metrics.
//
//	go run ./examples/remote_tune
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"github.com/hpcautotune/hiperbot"
	"github.com/hpcautotune/hiperbot/client"
	"github.com/hpcautotune/hiperbot/internal/server"
	"github.com/hpcautotune/hiperbot/miniapps/chares"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "remote_tune:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Daemon side: journaled store + HTTP server on loopback. ---
	dataDir, err := os.MkdirTemp("", "hiperbotd-example-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	store, err := server.OpenStore(dataDir)
	if err != nil {
		return err
	}
	srv := server.New(store, log.New(os.Stderr, "", 0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon listening on %s, journals in %s\n\n", base, dataDir)

	// --- Worker side: everything below talks HTTP only. ---
	ctx := context.Background()
	cl, err := client.New(base)
	if err != nil {
		return err
	}

	grains := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}
	workers := []int{1, 2, 4, 8}
	sp := hiperbot.NewSpace(
		hiperbot.DiscreteInts("grain", grains...),
		hiperbot.DiscreteInts("workers", workers...),
	)
	id, err := cl.CreateSessionFromSpace(ctx, "chares-demo", sp, client.SessionOptions{
		Seed:           1,
		InitialSamples: 6,
	})
	if err != nil {
		return err
	}
	fmt.Printf("created session %q over %d configurations\n", id, sp.GridSize())

	// The objective receives wire configs (name→label maps); since
	// the worker knows the space, it parses them back to Configs.
	const reps = 3
	objective := func(cfg map[string]string) (float64, error) {
		c, err := sp.FromLabels(cfg)
		if err != nil {
			return 0, err
		}
		times := make([]float64, 0, reps)
		for i := 0; i < reps; i++ {
			res, err := chares.Run(chares.Config{
				TotalWork: 1 << 19,
				Grain:     grains[int(c[0])],
				Imbalance: 0.7,
				Workers:   workers[int(c[1])],
			})
			if err != nil {
				return 0, err
			}
			times = append(times, res.Elapsed.Seconds())
		}
		sort.Float64s(times)
		return times[len(times)/2], nil
	}

	start := time.Now()
	info, err := cl.Tune(ctx, id, objective, 16, 4, time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("\ntuned %d configurations in %v\n", info.Evaluations, time.Since(start).Round(time.Millisecond))
	fmt.Printf("best: %v → %.3f ms\n", info.Best.Config, info.Best.Value*1e3)
	fmt.Println("parameter importance (JS divergence):")
	for _, e := range info.Importance {
		fmt.Printf("  %-8s %.4f\n", e.Param, e.Score)
	}

	metrics, err := cl.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Println("\ndaemon metrics:")
	for _, name := range []string{"suggest", "observe", "status"} {
		if em, ok := metrics.Endpoints[name]; ok && em.LatencyMS != nil {
			fmt.Printf("  %-8s %3d requests, p50 %.2f ms, p99 %.2f ms\n",
				name, em.Requests, em.LatencyMS.P50, em.LatencyMS.P99)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return store.Close()
}
