// Quickstart: tune three parameters of a synthetic kernel with
// HiPerBOt and print the best configuration found.
//
// The "application" here is a closed-form cost function so the example
// runs instantly; swap run() for a function that actually launches
// your code and returns its measured runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	hiperbot "github.com/hpcautotune/hiperbot"
)

// run models the runtime of a blocked matrix kernel: the tiled layout
// needs a matching block fraction, and thread scaling saturates.
func run(c hiperbot.Config) float64 {
	layout := int(c[0]) // 0 rowmajor, 1 colmajor, 2 tiled
	threads := c[1]     // numeric value is the level index here; see below
	blockfrac := c[2]   // continuous in [0.1, 0.9]

	threadsVal := []float64{1, 2, 4, 8, 16}[int(threads)]
	t := 8.0 / math.Pow(threadsVal, 0.7)
	switch layout {
	case 0:
		t *= 1.35
	case 1:
		t *= 1.50
	case 2:
		// Tiled: fastest when the block fraction sits near 0.4.
		t *= 1.0 + 0.8*(blockfrac-0.4)*(blockfrac-0.4)
	}
	return t
}

func main() {
	sp := hiperbot.NewSpace(
		hiperbot.Discrete("layout", "rowmajor", "colmajor", "tiled"),
		hiperbot.DiscreteInts("threads", 1, 2, 4, 8, 16),
		hiperbot.Continuous("blockfrac", 0.1, 0.9),
	)

	evals := 0
	objective := func(c hiperbot.Config) float64 {
		evals++
		return run(c)
	}

	tuner, err := hiperbot.NewTuner(sp, objective, hiperbot.Options{
		InitialSamples: 10,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}
	best, err := tuner.Run(60)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("evaluations: %d\n", evals)
	fmt.Printf("best configuration: %s\n", sp.Describe(best.Config))
	fmt.Printf("best runtime:       %.3f s\n", best.Value)

	// Which parameters mattered? (paper §VI)
	names, scores, err := hiperbot.Importance(tuner.History(), hiperbot.SurrogateConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parameter importance (JS divergence):")
	for i := range names {
		fmt.Printf("  %-10s %.4f\n", names[i], scores[i])
	}
}
