package hiperbot_test

import (
	"testing"

	hiperbot "github.com/hpcautotune/hiperbot"
	"github.com/hpcautotune/hiperbot/miniapps/amg"
	"github.com/hpcautotune/hiperbot/miniapps/chares"
	"github.com/hpcautotune/hiperbot/miniapps/sweep"
)

// Integration: tune the over-decomposition grain with the public API
// against a fully deterministic objective — the simulated load
// imbalance plus a per-chare overhead tax from miniapps/chares. This
// is the end-to-end sgrain story of the paper's OpenAtom study,
// executed against real scheduler math rather than a table.
func TestTuneChareGrainDeterministic(t *testing.T) {
	grains := []int{1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
	sp := hiperbot.NewSpace(hiperbot.DiscreteInts("grain", grains...))

	objective := func(c hiperbot.Config) float64 {
		cfg := chares.Config{
			TotalWork: 1 << 18,
			Grain:     grains[int(c[0])],
			Imbalance: 1,
			Workers:   8,
			Overhead:  40,
		}
		imb, err := chares.SimulateImbalance(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Cost model: imbalance stretches the makespan, overhead adds
		// work proportional to the chare count.
		n := (cfg.TotalWork + cfg.Grain - 1) / cfg.Grain
		overheadFrac := float64(n*cfg.Overhead) / float64(cfg.TotalWork)
		return imb * (1 + overheadFrac)
	}

	tn, err := hiperbot.NewTuner(sp, objective, hiperbot.Options{InitialSamples: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.Run(7) // the whole 7-level space
	if err != nil {
		t.Fatal(err)
	}
	g := grains[int(best.Config[0])]
	// The sweet spot: fine enough to balance (many chares per worker),
	// coarse enough to amortize overhead — neither extreme.
	if g <= 1<<6 || g >= 1<<16 {
		t.Fatalf("best grain %d is an extreme; cost landscape broken", g)
	}
}

// Integration: the live sweep kernel is tunable through the public API
// using a deterministic work proxy (zone updates per unit checksum
// variation is meaningless; instead verify the plumbing: every
// configuration runs, returns sane results, and the tuner stays within
// budget).
func TestTuneLiveSweepPlumbing(t *testing.T) {
	sp := hiperbot.NewSpace(
		hiperbot.Discrete("nesting", "GDZ", "DGZ", "ZGD"),
		hiperbot.DiscreteInts("gset", 1, 2, 4),
	)
	evals := 0
	objective := func(c hiperbot.Config) float64 {
		evals++
		res, err := sweep.Run(sweep.Config{
			NX: 16, NY: 16, Groups: 8, Directions: 8,
			Gset:    []int{1, 2, 4}[int(c[1])],
			Dset:    2,
			Nesting: []sweep.Nesting{sweep.NestingGDZ, sweep.NestingDGZ, sweep.NestingZGD}[int(c[0])],
			Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds()
	}
	tn, err := hiperbot.NewTuner(sp, objective, hiperbot.Options{InitialSamples: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(6); err != nil {
		t.Fatal(err)
	}
	if evals != 6 {
		t.Fatalf("evals = %d", evals)
	}
}

// Integration: the AMG mini-solver exposes a genuine quality/cost
// trade-off the tuner can navigate — minimize cycles-to-convergence
// over the multigrid parameters (deterministic objective).
func TestTuneAMGCycles(t *testing.T) {
	sp := hiperbot.NewSpace(
		hiperbot.Discrete("smoother", "jacobi", "redblack-gs"),
		hiperbot.DiscreteInts("levels", 1, 2, 3, 4),
		hiperbot.DiscreteInts("presweeps", 1, 2, 3),
	)
	objective := func(c hiperbot.Config) float64 {
		res, err := amg.Solve(amg.Config{
			N:          31,
			Smoother:   []amg.Smoother{amg.Jacobi, amg.RedBlackGS}[int(c[0])],
			Levels:     []int{1, 2, 3, 4}[int(c[1])],
			PreSweeps:  []int{1, 2, 3}[int(c[2])],
			PostSweeps: 1,
			MU:         1,
			Tol:        1e-7,
			MaxCycles:  80,
			Workers:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			return 1000 // failure sentinel: worst possible
		}
		// Cost: cycles weighted by per-cycle smoothing work.
		sweepsPerCycle := float64([]int{1, 2, 3}[int(c[2])] + 1)
		return float64(res.Cycles) * sweepsPerCycle * float64([]int{1, 2, 3, 4}[int(c[1])])
	}
	tn, err := hiperbot.NewTuner(sp, objective, hiperbot.Options{InitialSamples: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.Run(16)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value >= 1000 {
		t.Fatal("tuner settled on a non-converging configuration")
	}
	// Multigrid (levels > 1) must be part of the best configuration:
	// pure smoothing cannot compete on cycles.
	if int(best.Config[1]) == 0 {
		t.Fatalf("best uses no hierarchy: %v", best.Config)
	}
}
