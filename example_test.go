package hiperbot_test

import (
	"fmt"
	"strings"

	hiperbot "github.com/hpcautotune/hiperbot"
)

// Example demonstrates the minimal tuning loop: define a space, hand
// the tuner an objective, and run a fixed evaluation budget.
func Example() {
	sp := hiperbot.NewSpace(
		hiperbot.Discrete("layout", "aos", "soa"),
		hiperbot.DiscreteInts("threads", 1, 2, 4, 8),
	)
	// A deterministic stand-in for "run the application".
	objective := func(c hiperbot.Config) float64 {
		t := []float64{8, 4.5, 2.8, 2.2}[int(c[1])] // thread scaling
		if int(c[0]) == 0 {                         // aos layout penalty
			t *= 1.4
		}
		return t
	}
	tuner, err := hiperbot.NewTuner(sp, objective, hiperbot.Options{
		InitialSamples: 4, // the space has only 8 configurations
		Seed:           1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	best, err := tuner.Run(8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s → %.1f s\n", sp.Describe(best.Config), best.Value)
	// Output: layout=soa, threads=8 → 2.2 s
}

// ExampleImportance ranks parameters by how strongly they separate
// good configurations from bad ones (paper §VI).
func ExampleImportance() {
	sp := hiperbot.NewSpace(
		hiperbot.Discrete("matters", "a", "b"),
		hiperbot.Discrete("noise", "x", "y"),
	)
	h := hiperbot.NewHistory(sp)
	h.MustAdd(hiperbot.Config{0, 0}, 1.0)
	h.MustAdd(hiperbot.Config{0, 1}, 1.1)
	h.MustAdd(hiperbot.Config{1, 0}, 9.0)
	h.MustAdd(hiperbot.Config{1, 1}, 9.1)
	names, _, err := hiperbot.Importance(h, hiperbot.SurrogateConfig{Quantile: 0.5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(names[0])
	// Output: matters
}

// ExampleLoadDataset tunes over pre-collected measurements: the tuner
// only ever proposes configurations that exist in the table.
func ExampleLoadDataset() {
	sp := hiperbot.NewSpace(
		hiperbot.Discrete("solver", "cg", "mg"),
		hiperbot.DiscreteInts("threads", 1, 2),
	)
	csv := "solver,threads,time\n" +
		"cg,1,4.0\ncg,2,2.5\nmg,1,2.0\nmg,2,1.2\n"
	tbl, err := hiperbot.LoadDataset("study", sp, strings.NewReader(csv))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	hist, err := hiperbot.TuneDataset(tbl, 3, hiperbot.Options{InitialSamples: 2, Seed: 5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d evaluations, best %.1f s\n", hist.Len(), hist.Best().Value)
	// Output: 3 evaluations, best 1.2 s
}

// ExampleNewPrior shows transfer learning: source-domain observations
// become a prior that steers the target-domain search (eqs. 9-10).
func ExampleNewPrior() {
	sp := hiperbot.NewSpace(hiperbot.Discrete("solver", "slow", "fast"))
	src := hiperbot.NewHistory(sp)
	src.MustAdd(hiperbot.Config{0}, 10) // slow is bad in the source...
	src.MustAdd(hiperbot.Config{1}, 1)  // ...fast is good
	prior, err := hiperbot.NewPrior(src, hiperbot.SurrogateConfig{Quantile: 0.5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s, err := hiperbot.BuildSurrogate(src, hiperbot.SurrogateConfig{
		Quantile: 0.5, Prior: prior, PriorWeight: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(s.Score(hiperbot.Config{1}) > s.Score(hiperbot.Config{0}))
	// Output: true
}
