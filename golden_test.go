package hiperbot_test

// Golden-parity tests for the engine refactor: the selection
// sequences below were captured from the seed tuner (pre-refactor
// HEAD) for fixed seeds on the Kripke and LULESH tables. The
// refactored engine-driven Tuner must reproduce every sequence
// bit-for-bit — ranking (single and batched), proposal, and GEIST all
// go through Model/Acquirer now, and any drift in RNG consumption,
// tie-breaking, or score accumulation order shows up here as a
// mismatched index.

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/apps/lulesh"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/geist"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Sequences captured at commit "hiperbotd: tuning-as-a-service"
// (pre-engine-refactor) with the capture driver below. Indices are
// table rows for ranking/geist and space grid indices for proposal.
var goldenSequences = map[string][]int{
	"kripke-exec-rank-s42-b40":     {135, 610, 1094, 1487, 1594, 1236, 1155, 1364, 1221, 935, 1093, 465, 1281, 513, 1136, 1401, 984, 1357, 1127, 1593, 356, 347, 1420, 98, 354, 328, 344, 84, 375, 125, 657, 12, 488, 757, 645, 139, 221, 215, 174, 704},
	"kripke-exec-rank-s7-b40":      {1129, 449, 1351, 1578, 1593, 1402, 97, 167, 647, 243, 867, 1171, 1502, 1408, 721, 895, 409, 743, 249, 212, 275, 739, 438, 443, 444, 439, 713, 714, 709, 710, 964, 730, 279, 1239, 1231, 704, 1227, 1266, 1223, 548},
	"lulesh-flags-rank-s3-b40":     {3290, 3051, 1039, 2542, 2021, 1901, 999, 3403, 4481, 927, 4389, 3231, 3064, 3584, 3256, 524, 548, 546, 4259, 3361, 4166, 4245, 4661, 2270, 2753, 872, 1805, 2711, 2743, 2038, 4663, 1807, 4167, 1350, 2272, 874, 2734, 4651, 1109, 2755},
	"kripke-exec-batch-s11-b45-k5": {359, 140, 394, 714, 137, 492, 822, 1598, 1013, 367, 101, 542, 1362, 119, 598, 1338, 36, 146, 316, 1580, 725, 1223, 185, 701, 1248, 713, 190, 978, 148, 181, 668, 178, 1179, 139, 959, 681, 662, 151, 613, 665, 685, 84, 1186, 623, 669},
	"kripke-exec-prop-s42-b30":     {2871, 49, 2777, 1938, 3498, 672, 2716, 2133, 1001, 2934, 1462, 995, 2539, 2874, 2705, 729, 3008, 354, 3452, 3394, 1516, 1522, 1636, 1396, 1402, 1390, 1276, 1456, 1504, 1336},
	"lulesh-flags-prop-s9-b30":     {383, 539, 558, 986, 2369, 1353, 3191, 4381, 1600, 5146, 64, 4306, 5362, 4355, 344, 1743, 4625, 3205, 1827, 3621, 4110, 4302, 4206, 4210, 5454, 3054, 5262, 5310, 4218, 750},
	"kripke-exec-geist-s5-b60":     {825, 459, 1253, 906, 1293, 1600, 1188, 1095, 1311, 401, 774, 1160, 1327, 1036, 568, 610, 1401, 959, 580, 805, 1578, 618, 1271, 1302, 1462, 1017, 1022, 1107, 933, 508, 1186, 749, 564, 1576, 1577, 1291, 1016, 139, 950, 707, 84, 215, 541, 1169, 1239, 482, 1179, 619, 225, 1580, 1211, 125, 1456, 1200, 344, 1227, 1284, 1175, 356, 1409},
	// Captured at the introduction of the "gp" engine (incremental
	// GP-EI over the candidate pool, ranking acquisition).
	"kripke-exec-gpeng-s42-b40": {135, 610, 1094, 1487, 1594, 1236, 1155, 1364, 1221, 935, 1093, 465, 1281, 513, 1136, 1401, 984, 1357, 1127, 1593, 1095, 1151, 1087, 303, 1561, 1565, 587, 578, 589, 572, 548, 570, 113, 49, 831, 58, 53, 757, 221, 208},
}

func assertGolden(t *testing.T, name string, got []int) {
	t.Helper()
	want := goldenSequences[name]
	if len(got) != len(want) {
		t.Fatalf("%s: selected %d configurations, golden has %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: selection %d diverged: got index %d, golden %d\n got:  %v\n want: %v",
				name, i, got[i], want[i], got, want)
		}
	}
}

func tableRun(t *testing.T, tbl *dataset.Table, seed uint64, budget, batch int) []int {
	t.Helper()
	cands := make([]space.Config, tbl.Len())
	for i := 0; i < tbl.Len(); i++ {
		cands[i] = tbl.Config(i)
	}
	var seq []int
	tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
		Seed:       seed,
		Candidates: cands,
		OnStep: func(iter int, obs core.Observation) {
			seq = append(seq, tbl.IndexOf(obs.Config))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch > 1 {
		_, err = tn.RunBatched(budget, batch)
	} else {
		_, err = tn.Run(budget)
	}
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// engineRun drives a named registered engine over a table's candidate
// pool, returning the selected table rows.
func engineRun(t *testing.T, tbl *dataset.Table, engine string, seed uint64, budget int) []int {
	t.Helper()
	cands := make([]space.Config, tbl.Len())
	for i := 0; i < tbl.Len(); i++ {
		cands[i] = tbl.Config(i)
	}
	var seq []int
	tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
		Seed:       seed,
		Engine:     engine,
		Candidates: cands,
		OnStep: func(iter int, obs core.Observation) {
			seq = append(seq, tbl.IndexOf(obs.Config))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(budget); err != nil {
		t.Fatal(err)
	}
	return seq
}

func proposalRun(t *testing.T, m interface {
	Space() *space.Space
	Evaluate(space.Config) float64
}, seed uint64, budget int) []int {
	t.Helper()
	sp := m.Space()
	var seq []int
	tn, err := core.NewTuner(sp, m.Evaluate, core.Options{
		Seed:     seed,
		Strategy: core.Proposal,
		OnStep: func(iter int, obs core.Observation) {
			seq = append(seq, sp.GridIndex(obs.Config))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(budget); err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestGoldenRankingSequences(t *testing.T) {
	ke := kripke.Exec().Table()
	lf := lulesh.Flags().Table()
	if ke.Len() != 1612 || lf.Len() != 4764 {
		t.Fatalf("dataset sizes changed (kripke %d, lulesh %d); goldens no longer apply", ke.Len(), lf.Len())
	}
	assertGolden(t, "kripke-exec-rank-s42-b40", tableRun(t, ke, 42, 40, 1))
	assertGolden(t, "kripke-exec-rank-s7-b40", tableRun(t, ke, 7, 40, 1))
	assertGolden(t, "lulesh-flags-rank-s3-b40", tableRun(t, lf, 3, 40, 1))
}

func TestGoldenBatchedSequence(t *testing.T) {
	ke := kripke.Exec().Table()
	assertGolden(t, "kripke-exec-batch-s11-b45-k5", tableRun(t, ke, 11, 45, 5))
}

func TestGoldenProposalSequences(t *testing.T) {
	assertGolden(t, "kripke-exec-prop-s42-b30", proposalRun(t, kripke.Exec(), 42, 30))
	assertGolden(t, "lulesh-flags-prop-s9-b30", proposalRun(t, lulesh.Flags(), 9, 30))
}

// TestGoldenIncrementalMatchesColdSelections proves the
// fit-incremental TPE path selects bit-identically to cold rebuilds:
// a tuner stepped continuously (its TPEModel folds each tell into
// cached statistics) must pick, at every model-guided step, the exact
// candidate a freshly built tuner — resumed from the same history
// prefix, so its first fit is a cold build — picks.
func TestGoldenIncrementalMatchesColdSelections(t *testing.T) {
	tbl := kripke.Exec().Table()
	cands := make([]space.Config, tbl.Len())
	for i := 0; i < tbl.Len(); i++ {
		cands[i] = tbl.Config(i)
	}
	tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
		Seed:       42,
		Candidates: cands,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tn.Evaluations() < 40 {
		warm := tn.Evaluations() >= tn.InitialSamples()
		if warm {
			picks, err := tn.SelectBatch(1)
			if err != nil {
				t.Fatal(err)
			}
			incPick := tbl.IndexOf(picks[0])

			cold, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
				Seed:       42,
				Candidates: cands,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := cold.Resume(tn.History()); err != nil {
				t.Fatal(err)
			}
			coldPicks, err := cold.SelectBatch(1)
			if err != nil {
				t.Fatal(err)
			}
			if coldPick := tbl.IndexOf(coldPicks[0]); coldPick != incPick {
				t.Fatalf("step %d: incremental fit picked index %d, cold rebuild picked %d",
					tn.Evaluations(), incPick, coldPick)
			}
		}
		if _, err := tn.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenGPEngineSequence pins the "gp" engine's Tuner-driven
// selections; TestGoldenGPEngineIncrementalMatchesCold additionally
// proves its incremental fits (Cholesky row extension + pool-cache
// rows) select bit-identically to a cold rebuild from the same
// history prefix at every model-guided step.
func TestGoldenGPEngineSequence(t *testing.T) {
	ke := kripke.Exec().Table()
	assertGolden(t, "kripke-exec-gpeng-s42-b40", engineRun(t, ke, "gp", 42, 40))
}

func TestGoldenGPEngineIncrementalMatchesCold(t *testing.T) {
	tbl := kripke.Exec().Table()
	cands := make([]space.Config, tbl.Len())
	for i := 0; i < tbl.Len(); i++ {
		cands[i] = tbl.Config(i)
	}
	newGP := func() *core.Tuner {
		tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
			Seed:       42,
			Engine:     "gp",
			Candidates: cands,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}
	tn := newGP()
	for tn.Evaluations() < 40 {
		if tn.Evaluations() >= tn.InitialSamples() {
			picks, err := tn.SelectBatch(1)
			if err != nil {
				t.Fatal(err)
			}
			incPick := tbl.IndexOf(picks[0])

			cold := newGP()
			if err := cold.Resume(tn.History()); err != nil {
				t.Fatal(err)
			}
			coldPicks, err := cold.SelectBatch(1)
			if err != nil {
				t.Fatal(err)
			}
			if coldPick := tbl.IndexOf(coldPicks[0]); coldPick != incPick {
				t.Fatalf("step %d: incremental fit picked index %d, cold rebuild picked %d",
					tn.Evaluations(), incPick, coldPick)
			}
		}
		if _, err := tn.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGoldenGEISTSequence(t *testing.T) {
	ke := kripke.Exec().Table()
	g := geist.BuildGraph(ke)
	s, err := geist.NewSampler(ke, g, geist.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]int, 0, h.Len())
	for i := 0; i < h.Len(); i++ {
		seq = append(seq, ke.IndexOf(h.At(i).Config))
	}
	assertGolden(t, "kripke-exec-geist-s5-b60", seq)
}
